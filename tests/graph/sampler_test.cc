// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// NeighborSampler contracts (DESIGN §15):
//   * Block shapes nest: every dst frontier is a prefix of its src frontier,
//     seeds are the top dst frontier, input_nodes the bottom src frontier.
//   * A fanout covering every neighborhood reproduces the exact Â slice
//     (bitwise values, scale exactly 1).
//   * Sampled rows preserve their Â row sum up to float rounding.
//   * A fixed (seeds, batch_seed) is bitwise reproducible at 1/4/8 threads
//     and across replays; a different batch_seed draws differently.
//   * Skip-masked dst rows collapse to the bare self entry, expand no
//     frontier, and are accounted in nodes_pruned / edges_pruned (and the
//     sampler.* telemetry counters).

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/telemetry.h"
#include "graph/datasets.h"
#include "graph/sampler.h"

namespace skipnode {
namespace {

std::vector<int> SeedNodes(const Graph& graph, int count, uint64_t seed) {
  Rng rng(seed);
  std::set<int> picked;
  while (static_cast<int>(picked.size()) < count) {
    picked.insert(static_cast<int>(rng.UniformInt(graph.num_nodes())));
  }
  return std::vector<int>(picked.begin(), picked.end());
}

void ExpectIdenticalBlock(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (int r = 0; r <= a.rows(); ++r) {
    ASSERT_EQ(a.row_offsets()[static_cast<size_t>(r)],
              b.row_offsets()[static_cast<size_t>(r)]);
  }
  for (int64_t e = 0; e < a.nnz(); ++e) {
    const size_t i = static_cast<size_t>(e);
    ASSERT_EQ(a.col_idx()[i], b.col_idx()[i]) << "entry " << e;
    ASSERT_EQ(a.values()[i], b.values()[i]) << "entry " << e;  // bitwise
  }
}

void ExpectIdenticalBatch(const SampledBatch& a, const SampledBatch& b) {
  ASSERT_EQ(a.input_nodes, b.input_nodes);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    ExpectIdenticalBlock(*a.layers[l].block, *b.layers[l].block);
    ASSERT_EQ(a.layers[l].skip_mask, b.layers[l].skip_mask);
  }
  ASSERT_EQ(a.nodes_pruned, b.nodes_pruned);
  ASSERT_EQ(a.edges_pruned, b.edges_pruned);
}

class SamplerTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreadCount(0); }
};

TEST_F(SamplerTest, BlockShapesNestAndSelfEntriesExist) {
  const Graph graph = BuildDatasetByName("cora_like", 0.3, 1);
  NeighborSampler sampler(graph, {{4, 4, 4}});
  const std::vector<int> seeds = SeedNodes(graph, 32, 7);
  const SampledBatch batch = sampler.SampleBlocks(seeds, 99, nullptr);

  ASSERT_EQ(batch.layers.size(), 3u);
  // Top dst frontier is exactly the seed set.
  EXPECT_EQ(batch.layers[2].num_dst(), static_cast<int>(seeds.size()));
  // Frontiers nest: layer l's src frontier is layer l-1's... (the loop runs
  // top layer first, so src(l) == dst(l-1) going down).
  EXPECT_EQ(batch.layers[2].num_src(), batch.layers[1].num_dst());
  EXPECT_EQ(batch.layers[1].num_src(), batch.layers[0].num_dst());
  EXPECT_EQ(batch.layers[0].num_src(),
            static_cast<int>(batch.input_nodes.size()));
  // Seeds are the prefix of every frontier (dst ⊂ src with aligned ids).
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch.input_nodes[i], seeds[i]);
  }
  // Every dst row stores its self entry at local column == local row, plus
  // at most fanout neighbors.
  for (const SampledLayer& layer : batch.layers) {
    const CsrMatrix& block = *layer.block;
    for (int r = 0; r < block.rows(); ++r) {
      EXPECT_GE(block.RowNnz(r), 1);
      EXPECT_LE(block.RowNnz(r), 1 + 4);
      bool has_self = false;
      for (int64_t e = block.RowBegin(r); e < block.RowEnd(r); ++e) {
        if (block.col_idx()[static_cast<size_t>(e)] == r) has_self = true;
      }
      EXPECT_TRUE(has_self) << "row " << r;
    }
  }
  EXPECT_EQ(batch.nodes_pruned, 0);
  EXPECT_EQ(batch.edges_pruned, 0);
  EXPECT_GT(sampler.MemoryFootprintBytes(), 0);
}

TEST_F(SamplerTest, FullFanoutReproducesExactAdjacencySlice) {
  const Graph graph = BuildDatasetByName("cora_like", 0.2, 2);
  const CsrMatrix& a = *graph.normalized_adjacency();
  // A fanout no row can exceed: every block row must be the verbatim Â row.
  NeighborSampler sampler(graph, {{graph.num_nodes(), graph.num_nodes()}});
  const std::vector<int> seeds = SeedNodes(graph, 16, 3);
  const SampledBatch batch = sampler.SampleBlocks(seeds, 5, nullptr);

  for (const SampledLayer& layer : batch.layers) {
    const CsrMatrix& block = *layer.block;
    for (int r = 0; r < block.rows(); ++r) {
      const int g = batch.input_nodes[static_cast<size_t>(r)];
      ASSERT_EQ(block.RowNnz(r), a.RowNnz(g)) << "row " << r;
      // Collect the global row as (global col -> value) and compare each
      // block entry bitwise through the id map.
      for (int64_t e = block.RowBegin(r); e < block.RowEnd(r); ++e) {
        const int local_col = block.col_idx()[static_cast<size_t>(e)];
        const int global_col =
            batch.input_nodes[static_cast<size_t>(local_col)];
        bool found = false;
        for (int64_t ge = a.RowBegin(g); ge < a.RowEnd(g); ++ge) {
          if (a.col_idx()[static_cast<size_t>(ge)] == global_col) {
            EXPECT_EQ(block.values()[static_cast<size_t>(e)],
                      a.values()[static_cast<size_t>(ge)])  // bitwise
                << "row " << r << " col " << global_col;
            found = true;
          }
        }
        EXPECT_TRUE(found) << "row " << r << " col " << global_col;
      }
    }
  }
}

TEST_F(SamplerTest, SampledRowsPreserveAdjacencyRowSums) {
  const Graph graph = BuildDatasetByName("pubmed_like", 0.1, 4);
  const CsrMatrix& a = *graph.normalized_adjacency();
  NeighborSampler sampler(graph, {{2, 2}});
  const std::vector<int> seeds = SeedNodes(graph, 64, 11);
  const SampledBatch batch = sampler.SampleBlocks(seeds, 17, nullptr);

  const CsrMatrix& block = *batch.layers[1].block;
  for (int r = 0; r < block.rows(); ++r) {
    const int g = batch.input_nodes[static_cast<size_t>(r)];
    double block_sum = 0.0, full_sum = 0.0;
    for (int64_t e = block.RowBegin(r); e < block.RowEnd(r); ++e) {
      block_sum += block.values()[static_cast<size_t>(e)];
    }
    for (int64_t e = a.RowBegin(g); e < a.RowEnd(g); ++e) {
      full_sum += a.values()[static_cast<size_t>(e)];
    }
    EXPECT_NEAR(block_sum, full_sum, 1e-4 * (1.0 + full_sum))
        << "row " << r;
  }
}

TEST_F(SamplerTest, BitwiseIdenticalAcrossThreadCountsAndReplays) {
  const Graph graph = BuildDatasetByName("citeseer_like", 0.3, 6);
  const std::vector<int> seeds = SeedNodes(graph, 48, 13);
  const LayerSkipMaskFn mask_fn = [](int layer,
                                     const std::vector<int>& dst_nodes) {
    if (layer != 1) return std::vector<uint8_t>();
    std::vector<uint8_t> mask(dst_nodes.size(), 0);
    for (size_t i = 0; i < mask.size(); ++i) mask[i] = (i % 3 == 0);
    return mask;
  };

  SetParallelThreadCount(1);
  NeighborSampler ref_sampler(graph, {{3, 3, 3}});
  const SampledBatch reference = ref_sampler.SampleBlocks(seeds, 21, mask_fn);
  // Replay on the same sampler instance (exercises the generation stamps).
  ExpectIdenticalBatch(reference,
                       ref_sampler.SampleBlocks(seeds, 21, mask_fn));
  for (const int threads : {4, 8}) {
    SetParallelThreadCount(threads);
    NeighborSampler sampler(graph, {{3, 3, 3}});
    ExpectIdenticalBatch(reference, sampler.SampleBlocks(seeds, 21, mask_fn));
  }

  // A different batch seed draws a different neighborhood.
  SetParallelThreadCount(1);
  const SampledBatch other = ref_sampler.SampleBlocks(seeds, 22, mask_fn);
  bool any_difference = other.input_nodes != reference.input_nodes;
  for (size_t l = 0; !any_difference && l < reference.layers.size(); ++l) {
    any_difference = reference.layers[l].block->nnz() !=
                         other.layers[l].block->nnz() ||
                     reference.layers[l].block->col_idx() !=
                         other.layers[l].block->col_idx();
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(SamplerTest, SkipMaskPrunesFrontierAndCountsSavings) {
  const Graph graph = BuildDatasetByName("cora_like", 0.3, 1);
  const std::vector<int> seeds = SeedNodes(graph, 32, 9);
  const LayerSkipMaskFn all_middle = [](int layer,
                                        const std::vector<int>& dst_nodes) {
    // Mask every dst row of the (single) middle layer.
    if (layer != 1) return std::vector<uint8_t>();
    return std::vector<uint8_t>(dst_nodes.size(), 1);
  };

  SetTelemetryEnabled(true);
  ResetTelemetry();
  NeighborSampler masked_sampler(graph, {{4, 4, 4}});
  const SampledBatch masked = masked_sampler.SampleBlocks(seeds, 5, all_middle);
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  SetTelemetryEnabled(false);
  NeighborSampler plain_sampler(graph, {{4, 4, 4}});
  const SampledBatch plain = plain_sampler.SampleBlocks(seeds, 5, nullptr);

  // Masked rows collapse to the bare self entry and expand nothing: the
  // middle layer's src frontier IS its dst frontier, and the input frontier
  // shrinks against the unmasked run.
  const SampledLayer& middle = masked.layers[1];
  EXPECT_FALSE(middle.skip_mask.empty());
  EXPECT_EQ(middle.num_src(), middle.num_dst());
  for (int r = 0; r < middle.block->rows(); ++r) {
    ASSERT_EQ(middle.block->RowNnz(r), 1) << "row " << r;
    EXPECT_EQ(middle.block->col_idx()[static_cast<size_t>(
                  middle.block->RowBegin(r))],
              r);
  }
  EXPECT_EQ(masked.nodes_pruned, middle.num_dst());
  EXPECT_GT(masked.edges_pruned, 0);
  EXPECT_LT(masked.input_nodes.size(), plain.input_nodes.size());

  const MetricStat* nodes = snapshot.Find("sampler.nodes_pruned");
  const MetricStat* edges = snapshot.Find("sampler.edges_pruned");
  ASSERT_NE(nodes, nullptr);
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(nodes->items, masked.nodes_pruned);
  EXPECT_EQ(edges->items, masked.edges_pruned);
}

}  // namespace
}  // namespace skipnode
