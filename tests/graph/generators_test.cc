// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/generators.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace skipnode {
namespace {

TEST(ErdosRenyiTest, EdgeCountMatchesExpectation) {
  Rng rng(1);
  const int n = 100;
  const double p = 0.1;
  const EdgeList edges = ErdosRenyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, expected * 0.15);
}

TEST(ErdosRenyiTest, NoSelfLoopsOrDuplicates) {
  Rng rng(2);
  const EdgeList edges = ErdosRenyi(50, 0.3, rng);
  std::set<std::pair<int, int>> seen;
  for (const auto& [u, v] : edges) {
    EXPECT_NE(u, v);
    EXPECT_TRUE(seen.insert(std::minmax(u, v)).second);
  }
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(3);
  EXPECT_TRUE(ErdosRenyi(20, 0.0, rng).empty());
  EXPECT_EQ(ErdosRenyi(20, 1.0, rng).size(), 190u);
}

class PlantedPartitionTest : public ::testing::TestWithParam<double> {};

TEST_P(PlantedPartitionTest, HitsHomophilyTarget) {
  const double target = GetParam();
  Rng rng(4);
  PlantedPartitionConfig config;
  config.num_nodes = 800;
  config.num_classes = 4;
  config.num_edges = 3000;
  config.homophily = target;
  const PlantedPartitionGraph g = PlantedPartition(config, rng);

  int same = 0;
  for (const auto& [u, v] : g.edges) {
    if (g.labels[u] == g.labels[v]) ++same;
  }
  const double homophily = static_cast<double>(same) / g.edges.size();
  EXPECT_NEAR(homophily, target, 0.06);
}

INSTANTIATE_TEST_SUITE_P(HomophilySweep, PlantedPartitionTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(PlantedPartitionTest, ClassesAreBalanced) {
  Rng rng(5);
  PlantedPartitionConfig config;
  config.num_nodes = 600;
  config.num_classes = 3;
  config.num_edges = 1500;
  const PlantedPartitionGraph g = PlantedPartition(config, rng);
  std::vector<int> counts(3, 0);
  for (const int label : g.labels) counts[label] += 1;
  for (const int c : counts) EXPECT_EQ(c, 200);
}

TEST(PlantedPartitionTest, ReachesRequestedEdgeCount) {
  Rng rng(6);
  PlantedPartitionConfig config;
  config.num_nodes = 500;
  config.num_edges = 1200;
  config.num_classes = 5;
  const PlantedPartitionGraph g = PlantedPartition(config, rng);
  EXPECT_EQ(g.edges.size(), 1200u);
}

TEST(PlantedPartitionTest, DegreeCorrectionCreatesSkew) {
  // With power-law propensities the max degree should far exceed the mean.
  Rng rng(7);
  PlantedPartitionConfig config;
  config.num_nodes = 500;
  config.num_edges = 2000;
  config.num_classes = 2;
  config.power_law = 2.0;
  const PlantedPartitionGraph g = PlantedPartition(config, rng);
  const std::vector<int> degree = Degrees(config.num_nodes, g.edges);
  const int max_degree = *std::max_element(degree.begin(), degree.end());
  const double mean_degree = 2.0 * g.edges.size() / config.num_nodes;
  EXPECT_GT(max_degree, 3.0 * mean_degree);
}

TEST(FeatureTest, FeaturesAreRowNormalised) {
  Rng rng(8);
  std::vector<int> labels(100);
  for (int i = 0; i < 100; ++i) labels[i] = i % 4;
  FeatureConfig config;
  Matrix features = MakeClassFeatures(labels, 4, config, rng);
  for (int i = 0; i < features.rows(); ++i) {
    double norm_sq = 0.0;
    for (int j = 0; j < features.cols(); ++j) {
      norm_sq += features.at(i, j) * features.at(i, j);
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-4);
  }
}

TEST(FeatureTest, SameClassFeaturesAreMoreSimilar) {
  Rng rng(9);
  const int n = 400;
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i % 2;
  FeatureConfig config;
  config.signal = 0.8;
  Matrix features = MakeClassFeatures(labels, 2, config, rng);

  double same = 0.0, cross = 0.0;
  int same_count = 0, cross_count = 0;
  Rng pair_rng(10);
  for (int trial = 0; trial < 4000; ++trial) {
    const int i = static_cast<int>(pair_rng.UniformInt(n));
    const int j = static_cast<int>(pair_rng.UniformInt(n));
    if (i == j) continue;
    const float cos =
        CosineSimilarity(features.row(i), features.row(j), features.cols());
    if (labels[i] == labels[j]) {
      same += cos;
      ++same_count;
    } else {
      cross += cos;
      ++cross_count;
    }
  }
  EXPECT_GT(same / same_count, cross / cross_count + 0.1);
}

TEST(FeatureTest, ZeroSignalHasNoClassStructure) {
  Rng rng(11);
  const int n = 300;
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i % 2;
  FeatureConfig config;
  config.signal = 0.0;
  Matrix features = MakeClassFeatures(labels, 2, config, rng);
  double same = 0.0, cross = 0.0;
  int same_count = 0, cross_count = 0;
  for (int i = 0; i < 100; ++i) {
    for (int j = i + 1; j < 100; ++j) {
      const float cos =
          CosineSimilarity(features.row(i), features.row(j), features.cols());
      if (labels[i] == labels[j]) {
        same += cos;
        ++same_count;
      } else {
        cross += cos;
        ++cross_count;
      }
    }
  }
  EXPECT_NEAR(same / same_count, cross / cross_count, 0.05);
}

}  // namespace
}  // namespace skipnode
