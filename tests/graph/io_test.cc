// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

// Writes `contents` to a fresh temp file and returns its path.
std::string WriteTempFile(const std::string& tag,
                          const std::string& contents) {
  const std::string path =
      ::testing::TempDir() + "/skipnode_io_" + tag + ".txt";
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(IoTest, EdgeListRoundTrip) {
  EdgeList edges = {{0, 1}, {1, 2}, {0, 3}};
  const std::string path = ::testing::TempDir() + "/edges_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(path, edges));
  EdgeList loaded;
  int num_nodes = 0;
  ASSERT_TRUE(LoadEdgeList(path, &loaded, &num_nodes));
  EXPECT_EQ(loaded, edges);
  EXPECT_EQ(num_nodes, 4);
}

TEST(IoTest, EdgeListSkipsCommentsSelfLoopsAndDuplicates) {
  const std::string path = WriteTempFile("edges", R"(# a comment
0 1
1 0
2 2
3 4
)");
  EdgeList loaded;
  int num_nodes = 0;
  ASSERT_TRUE(LoadEdgeList(path, &loaded, &num_nodes));
  // "1 0" duplicates "0 1" (undirected); "2 2" is a self-loop.
  EXPECT_EQ(loaded, (EdgeList{{0, 1}, {3, 4}}));
  EXPECT_EQ(num_nodes, 5);
}

TEST(IoTest, EdgeListRespectsMinNumNodes) {
  const std::string path = WriteTempFile("edges_min", "0 1\n");
  EdgeList loaded;
  int num_nodes = 0;
  ASSERT_TRUE(LoadEdgeList(path, &loaded, &num_nodes, /*min_num_nodes=*/10));
  EXPECT_EQ(num_nodes, 10);
}

TEST(IoTest, EdgeListRejectsGarbage) {
  const std::string path = WriteTempFile("edges_bad", "0 x\n");
  EdgeList loaded;
  int num_nodes = 0;
  EXPECT_FALSE(LoadEdgeList(path, &loaded, &num_nodes));
  EXPECT_FALSE(LoadEdgeList("/nonexistent/file", &loaded, &num_nodes));
}

TEST(IoTest, LabelsRoundTrip) {
  const std::vector<int> labels = {0, 2, 1, 1, 0};
  const std::string path = ::testing::TempDir() + "/labels_roundtrip.txt";
  ASSERT_TRUE(SaveLabels(path, labels));
  std::vector<int> loaded;
  ASSERT_TRUE(LoadLabels(path, &loaded));
  EXPECT_EQ(loaded, labels);
}

TEST(IoTest, MatrixCsvRoundTrip) {
  Rng rng(1);
  Matrix m = Matrix::Random(5, 3, rng);
  const std::string path = ::testing::TempDir() + "/matrix_roundtrip.csv";
  ASSERT_TRUE(SaveMatrixCsv(path, m));
  Matrix loaded;
  ASSERT_TRUE(LoadMatrixCsv(path, &loaded));
  ASSERT_EQ(loaded.rows(), 5);
  ASSERT_EQ(loaded.cols(), 3);
  EXPECT_LT(MaxAbsDiff(loaded, m), 1e-4f);
}

TEST(IoTest, MatrixCsvRejectsRaggedRows) {
  const std::string path = WriteTempFile("ragged", "1,2,3\n4,5\n");
  Matrix loaded;
  EXPECT_FALSE(LoadMatrixCsv(path, &loaded));
}

TEST(IoTest, MatrixCsvRejectsNonNumeric) {
  const std::string path = WriteTempFile("nonnum", "1,abc\n");
  Matrix loaded;
  EXPECT_FALSE(LoadMatrixCsv(path, &loaded));
}

TEST(IoTest, LoadGraphAssemblesAllPieces) {
  // Export a synthetic graph and re-import it.
  Graph original = BuildDatasetByName("cornell_like", 1.0, 5);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveEdgeList(dir + "/g_edges.txt", original.edges()));
  ASSERT_TRUE(SaveMatrixCsv(dir + "/g_feats.csv", original.features()));
  ASSERT_TRUE(SaveLabels(dir + "/g_labels.txt", original.labels()));

  std::unique_ptr<Graph> loaded;
  ASSERT_TRUE(LoadGraph("reimported", dir + "/g_edges.txt",
                        dir + "/g_feats.csv", dir + "/g_labels.txt",
                        &loaded));
  EXPECT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  EXPECT_EQ(loaded->num_classes(), original.num_classes());
  EXPECT_EQ(loaded->labels(), original.labels());
  EXPECT_LT(MaxAbsDiff(loaded->features(), original.features()), 1e-4f);
  EXPECT_NEAR(loaded->EdgeHomophily(), original.EdgeHomophily(), 1e-9);
}

TEST(IoTest, LoadGraphWithoutLabels) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveEdgeList(dir + "/u_edges.txt", {{0, 1}, {1, 2}}));
  ASSERT_TRUE(SaveMatrixCsv(dir + "/u_feats.csv",
                            Matrix::Ones(3, 2)));
  std::unique_ptr<Graph> loaded;
  ASSERT_TRUE(LoadGraph("unlabeled", dir + "/u_edges.txt",
                        dir + "/u_feats.csv", "", &loaded));
  EXPECT_FALSE(loaded->has_labels());
  EXPECT_EQ(loaded->num_nodes(), 3);
}

TEST(IoTest, LoadGraphRejectsShapeMismatch) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveEdgeList(dir + "/m_edges.txt", {{0, 5}}));  // 6 nodes.
  ASSERT_TRUE(SaveMatrixCsv(dir + "/m_feats.csv", Matrix::Ones(3, 2)));
  std::unique_ptr<Graph> loaded;
  EXPECT_FALSE(LoadGraph("mismatch", dir + "/m_edges.txt",
                         dir + "/m_feats.csv", "", &loaded));
}

}  // namespace
}  // namespace skipnode
