// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(DatasetsTest, AllSpecsAreListed) {
  EXPECT_EQ(AllDatasetSpecs().size(), 9u);
}

TEST(DatasetsTest, FindByName) {
  const DatasetSpec& spec = FindDatasetSpec("cora_like");
  EXPECT_EQ(spec.num_nodes, 2708);
  EXPECT_EQ(spec.num_classes, 7);
}

class DatasetBuildTest : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(DatasetBuildTest, MatchesSpecAtSmallScale) {
  const DatasetSpec& spec = GetParam();
  // Build at reduced scale to keep the suite fast. The scale must leave
  // each class enough intra-class pair capacity to hit the homophily
  // target (relevant for the 40-class arxiv stand-in).
  const double scale = spec.num_nodes > 3000 ? 0.25 : 0.3;
  Graph graph = BuildDataset(spec, scale, /*seed=*/3);

  EXPECT_EQ(graph.name(), spec.name);
  EXPECT_NEAR(graph.num_nodes(),
              std::max(spec.num_classes * 8,
                       static_cast<int>(std::lround(spec.num_nodes * scale))),
              1);
  EXPECT_EQ(graph.num_classes(), spec.num_classes);
  EXPECT_EQ(graph.feature_dim(), spec.feature_dim);
  EXPECT_TRUE(graph.has_labels());

  // Homophily should be near the spec target.
  EXPECT_NEAR(graph.EdgeHomophily(), spec.homophily, 0.10);

  // Years present exactly when requested.
  EXPECT_EQ(!graph.years().empty(), spec.with_years);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetBuildTest, ::testing::ValuesIn(AllDatasetSpecs()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

TEST(DatasetsTest, DeterministicForSameSeed) {
  Graph a = BuildDatasetByName("cora_like", 0.2, 7);
  Graph b = BuildDatasetByName("cora_like", 0.2, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  Graph a = BuildDatasetByName("cora_like", 0.2, 7);
  Graph b = BuildDatasetByName("cora_like", 0.2, 8);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(DatasetsTest, ArxivYearsSupportTemporalProtocol) {
  Graph arxiv = BuildDatasetByName("arxiv_like", 0.1, 5);
  int train = 0, val = 0, test = 0;
  for (const int year : arxiv.years()) {
    if (year <= 2017) {
      ++train;
    } else if (year == 2018) {
      ++val;
    } else {
      ++test;
    }
  }
  EXPECT_GT(train, val);
  EXPECT_GT(train, test);
  EXPECT_GT(val, 0);
  EXPECT_GT(test, 0);
}

TEST(DatasetsTest, HeterophilicDatasetsAreHeterophilic) {
  for (const char* name : {"chameleon_like", "cornell_like", "texas_like",
                           "wisconsin_like"}) {
    Graph graph = BuildDatasetByName(name, 1.0, 2);
    EXPECT_LT(graph.EdgeHomophily(), 0.4) << name;
  }
}

TEST(DatasetsTest, HomophilicDatasetsAreHomophilic) {
  for (const char* name : {"cora_like", "citeseer_like"}) {
    Graph graph = BuildDatasetByName(name, 0.3, 2);
    EXPECT_GT(graph.EdgeHomophily(), 0.6) << name;
  }
}

TEST(GraphTest, NormalizedAdjacencyIsCachedAndShared) {
  Graph graph = BuildDatasetByName("cornell_like", 1.0, 1);
  const auto a1 = graph.normalized_adjacency();
  const auto a2 = graph.normalized_adjacency();
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_EQ(a1->rows(), graph.num_nodes());
}

TEST(GraphTest, ComponentsCoverAllNodes) {
  Graph graph = BuildDatasetByName("texas_like", 1.0, 1);
  const std::vector<int>& comp = graph.components();
  EXPECT_EQ(static_cast<int>(comp.size()), graph.num_nodes());
  for (const int c : comp) EXPECT_GE(c, 0);
}

}  // namespace
}  // namespace skipnode
