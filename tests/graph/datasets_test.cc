// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "sparse/csr_matrix.h"
#include "sparse/graph_ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

TEST(DatasetsTest, AllSpecsAreListed) {
  EXPECT_EQ(AllDatasetSpecs().size(), 9u);
}

TEST(DatasetsTest, FindByName) {
  const DatasetSpec& spec = FindDatasetSpec("cora_like");
  EXPECT_EQ(spec.num_nodes, 2708);
  EXPECT_EQ(spec.num_classes, 7);
}

class DatasetBuildTest : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(DatasetBuildTest, MatchesSpecAtSmallScale) {
  const DatasetSpec& spec = GetParam();
  // Build at reduced scale to keep the suite fast. The scale must leave
  // each class enough intra-class pair capacity to hit the homophily
  // target (relevant for the 40-class arxiv stand-in).
  const double scale = spec.num_nodes > 3000 ? 0.25 : 0.3;
  Graph graph = BuildDataset(spec, scale, /*seed=*/3);

  EXPECT_EQ(graph.name(), spec.name);
  EXPECT_NEAR(graph.num_nodes(),
              std::max(spec.num_classes * 8,
                       static_cast<int>(std::lround(spec.num_nodes * scale))),
              1);
  EXPECT_EQ(graph.num_classes(), spec.num_classes);
  EXPECT_EQ(graph.feature_dim(), spec.feature_dim);
  EXPECT_TRUE(graph.has_labels());

  // Homophily should be near the spec target.
  EXPECT_NEAR(graph.EdgeHomophily(), spec.homophily, 0.10);

  // Years present exactly when requested.
  EXPECT_EQ(!graph.years().empty(), spec.with_years);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetBuildTest, ::testing::ValuesIn(AllDatasetSpecs()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

TEST(DatasetsTest, DeterministicForSameSeed) {
  Graph a = BuildDatasetByName("cora_like", 0.2, 7);
  Graph b = BuildDatasetByName("cora_like", 0.2, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  Graph a = BuildDatasetByName("cora_like", 0.2, 7);
  Graph b = BuildDatasetByName("cora_like", 0.2, 8);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(DatasetsTest, ArxivYearsSupportTemporalProtocol) {
  Graph arxiv = BuildDatasetByName("arxiv_like", 0.1, 5);
  int train = 0, val = 0, test = 0;
  for (const int year : arxiv.years()) {
    if (year <= 2017) {
      ++train;
    } else if (year == 2018) {
      ++val;
    } else {
      ++test;
    }
  }
  EXPECT_GT(train, val);
  EXPECT_GT(train, test);
  EXPECT_GT(val, 0);
  EXPECT_GT(test, 0);
}

TEST(DatasetsTest, HeterophilicDatasetsAreHeterophilic) {
  for (const char* name : {"chameleon_like", "cornell_like", "texas_like",
                           "wisconsin_like"}) {
    Graph graph = BuildDatasetByName(name, 1.0, 2);
    EXPECT_LT(graph.EdgeHomophily(), 0.4) << name;
  }
}

TEST(DatasetsTest, HomophilicDatasetsAreHomophilic) {
  for (const char* name : {"cora_like", "citeseer_like"}) {
    Graph graph = BuildDatasetByName(name, 0.3, 2);
    EXPECT_GT(graph.EdgeHomophily(), 0.6) << name;
  }
}

// The retired COO-era normalisation, reimplemented verbatim as the
// reference: symmetric-entry degree counting (duplicates counted), +1 for
// the self-loop, inv_sqrt in float, entries streamed edges-then-loops
// through a COO list. The streaming CsrBuilder path must reproduce it bit for
// bit on every dataset (DESIGN §13).
CsrMatrix CooReferenceNormalized(int n, const EdgeList& edges) {
  std::vector<int64_t> degree(n, 0);
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  std::vector<float> inv_sqrt(n);
  for (int i = 0; i < n; ++i) {
    inv_sqrt[i] =
        1.0f / std::sqrt(static_cast<float>(degree[i] + 1));
  }
  std::vector<std::pair<int, int>> coords;
  std::vector<float> values;
  for (const auto& [u, v] : edges) {
    coords.push_back({u, v});
    values.push_back(inv_sqrt[u] * inv_sqrt[v]);
    coords.push_back({v, u});
    values.push_back(inv_sqrt[v] * inv_sqrt[u]);
  }
  for (int i = 0; i < n; ++i) {
    coords.push_back({i, i});
    values.push_back(inv_sqrt[i] * inv_sqrt[i]);
  }
  return testing::CsrFromCoo(n, n, std::move(coords), std::move(values));
}

void ExpectIdenticalCsr(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (int r = 0; r <= a.rows(); ++r) {
    ASSERT_EQ(a.row_offsets()[static_cast<size_t>(r)],
              b.row_offsets()[static_cast<size_t>(r)])
        << "row " << r;
  }
  for (int64_t e = 0; e < a.nnz(); ++e) {
    const size_t i = static_cast<size_t>(e);
    ASSERT_EQ(a.col_idx()[i], b.col_idx()[i]) << "entry " << e;
    ASSERT_EQ(a.values()[i], b.values()[i]) << "entry " << e;  // bitwise
  }
}

TEST(DatasetsTest, StreamingNormalizationBitwiseMatchesCooOnEveryDataset) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const double scale = spec.num_nodes > 3000 ? 0.15 : 0.3;
    Graph graph = BuildDataset(spec, scale, /*seed=*/3);
    const CsrMatrix reference =
        CooReferenceNormalized(graph.num_nodes(), graph.edges());
    for (const int threads : {1, 4, 8}) {
      SetParallelThreadCount(threads);
      const CsrMatrix streamed =
          NormalizedAdjacency(graph.num_nodes(), graph.edges());
      ExpectIdenticalCsr(reference, streamed);
    }
    SetParallelThreadCount(0);
  }
}

TEST(DatasetsTest, ParseDatasetRequestSuffixes) {
  DatasetRequest request;
  EXPECT_TRUE(ParseDatasetRequest("cora_like", &request));
  EXPECT_EQ(request.name, "cora_like");
  EXPECT_EQ(request.nodes, 0);

  EXPECT_TRUE(ParseDatasetRequest("synth@1m", &request));
  EXPECT_EQ(request.name, "synth");
  EXPECT_EQ(request.nodes, 1000000);

  EXPECT_TRUE(ParseDatasetRequest("arxiv_like@169k", &request));
  EXPECT_EQ(request.name, "arxiv_like");
  EXPECT_EQ(request.nodes, 169000);

  EXPECT_TRUE(ParseDatasetRequest("synth@2M", &request));  // case-insensitive
  EXPECT_EQ(request.nodes, 2000000);

  EXPECT_TRUE(ParseDatasetRequest("synth@12345", &request));
  EXPECT_EQ(request.nodes, 12345);

  DatasetRequest untouched;
  untouched.nodes = 77;
  EXPECT_FALSE(ParseDatasetRequest("synth@", &untouched));
  EXPECT_FALSE(ParseDatasetRequest("synth@10q", &untouched));
  EXPECT_FALSE(ParseDatasetRequest("synth@k", &untouched));
  // A failed parse leaves the request untouched.
  EXPECT_EQ(untouched.nodes, 77);
}

TEST(DatasetsTest, RegistryKnowsEveryClassicSpecPlusSynth) {
  DatasetRegistry& registry = DatasetRegistry::Global();
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    EXPECT_TRUE(registry.Contains(spec.name)) << spec.name;
  }
  EXPECT_TRUE(registry.Contains("synth"));
  EXPECT_FALSE(registry.Contains("nope"));
  EXPECT_EQ(registry.NamesWithSummaries().size(), 10u);
}

TEST(DatasetsTest, RegistryUnmodifiedRequestIsLegacyPath) {
  DatasetRequest request;
  request.name = "cora_like";
  request.scale = 0.2;
  request.seed = 7;
  Graph via_registry = DatasetRegistry::Global().Build(request);
  Graph direct = BuildDatasetByName("cora_like", 0.2, 7);
  EXPECT_FALSE(via_registry.csr_backed());
  ASSERT_EQ(via_registry.num_edges(), direct.num_edges());
  EXPECT_EQ(via_registry.edges(), direct.edges());
  EXPECT_EQ(via_registry.labels(), direct.labels());
}

TEST(DatasetsTest, NodeOverrideStreamsClassicSpecIntoCsr) {
  DatasetRequest request;
  request.name = "cora_like";
  request.seed = 7;
  request.nodes = 5000;
  Graph graph = DatasetRegistry::Global().Build(request);
  EXPECT_TRUE(graph.csr_backed());
  EXPECT_EQ(graph.num_nodes(), 5000);
  EXPECT_EQ(graph.num_classes(), 7);
  EXPECT_GT(graph.num_edges(), 0);
  EXPECT_GT(graph.MemoryFootprintBytes(), 0);
}

TEST(DatasetsTest, MemoryFootprintCountsLazyDegreeWeightCache) {
  // The footprint must track every resident array, including the lazily
  // materialised degree-weight cache the biased SkipNode sampler reads —
  // bench/scale budgets peak RSS against this number (DESIGN §13/§15).
  Graph graph = BuildDatasetByName("cora_like", 0.2, 3);
  const int64_t before = graph.MemoryFootprintBytes();
  const std::vector<double>& weights = graph.degree_weights();
  ASSERT_EQ(static_cast<int>(weights.size()), graph.num_nodes());
  const int64_t after = graph.MemoryFootprintBytes();
  EXPECT_EQ(after - before,
            static_cast<int64_t>(graph.num_nodes()) *
                static_cast<int64_t>(sizeof(double)));
}

TEST(DatasetsTest, StreamingSynthIsDeterministicAndHomophilous) {
  DatasetRequest request;
  request.name = "synth";
  request.seed = 5;
  request.nodes = 20000;
  Graph a = DatasetRegistry::Global().Build(request);
  Graph b = DatasetRegistry::Global().Build(request);
  EXPECT_TRUE(a.csr_backed());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.labels(), b.labels());
  ExpectIdenticalCsr(*a.normalized_adjacency(), *b.normalized_adjacency());

  EXPECT_EQ(a.num_nodes(), 20000);
  EXPECT_EQ(a.feature_dim(), 32);
  EXPECT_EQ(a.num_classes(), 10);
  // Default degree follows the spec ratio (10); homophily near the target.
  const double avg_degree =
      2.0 * a.num_edges() / static_cast<double>(a.num_nodes());
  EXPECT_NEAR(avg_degree, 10.0, 1.0);
  EXPECT_NEAR(a.EdgeHomophily(), 0.80, 0.10);

  // The edge list is gone at streaming scale: components and MAD-style
  // walks go through the CSR pattern instead.
  const std::vector<int>& comp = a.components();
  EXPECT_EQ(static_cast<int>(comp.size()), a.num_nodes());

  // avg_degree override sizes the graph densely.
  request.avg_degree = 30.0;
  Graph dense = DatasetRegistry::Global().Build(request);
  const double dense_degree =
      2.0 * dense.num_edges() / static_cast<double>(dense.num_nodes());
  EXPECT_NEAR(dense_degree, 30.0, 3.0);
}

TEST(GraphTest, CsrBackedGraphRefusesEdgeList) {
  DatasetRequest request;
  request.name = "synth";
  request.seed = 5;
  request.nodes = 2000;
  Graph graph = DatasetRegistry::Global().Build(request);
  ASSERT_TRUE(graph.csr_backed());
  EXPECT_DEATH(graph.edges(), "CSR-backed");
}

TEST(GraphTest, NormalizedAdjacencyIsCachedAndShared) {
  Graph graph = BuildDatasetByName("cornell_like", 1.0, 1);
  const auto a1 = graph.normalized_adjacency();
  const auto a2 = graph.normalized_adjacency();
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_EQ(a1->rows(), graph.num_nodes());
}

TEST(GraphTest, ComponentsCoverAllNodes) {
  Graph graph = BuildDatasetByName("texas_like", 1.0, 1);
  const std::vector<int>& comp = graph.components();
  EXPECT_EQ(static_cast<int>(comp.size()), graph.num_nodes());
  for (const int c : comp) EXPECT_GE(c, 0);
}

}  // namespace
}  // namespace skipnode
