// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Adversarial corpus for the text loaders: every malformed input must make
// the loader return false — never abort, never silently truncate, never
// hand back a partially-parsed result the caller might mistake for a graph.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/io.h"

namespace skipnode {
namespace {

// Writes `contents` to a fresh temp file and returns its path.
std::string WriteTempFile(const std::string& tag,
                          const std::string& contents) {
  const std::string path =
      ::testing::TempDir() + "/skipnode_malformed_" + tag + ".txt";
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(IoMalformedTest, EdgeListRejectsEveryBadLine) {
  const struct {
    const char* tag;
    const char* contents;
  } kCases[] = {
      {"missing_endpoint", "0 1\n2\n"},
      {"extra_token", "0 1 7\n"},
      {"trailing_garbage", "0 1x\n"},
      {"non_numeric", "a b\n"},
      {"float_id", "0 1.5\n"},
      {"negative_id", "0 -3\n"},
      {"overflow_id", "0 99999999999999999999\n"},
  };
  for (const auto& test_case : kCases) {
    const std::string path = WriteTempFile(test_case.tag, test_case.contents);
    EdgeList edges;
    int num_nodes = 0;
    EXPECT_FALSE(LoadEdgeList(path, &edges, &num_nodes)) << test_case.tag;
  }
}

TEST(IoMalformedTest, EdgeListToleratesCrlfAndBlankLines) {
  const std::string path =
      WriteTempFile("crlf_edges", "0 1\r\n\r\n# comment\r\n2 3\r\n");
  EdgeList edges;
  int num_nodes = 0;
  ASSERT_TRUE(LoadEdgeList(path, &edges, &num_nodes));
  EXPECT_EQ(edges, (EdgeList{{0, 1}, {2, 3}}));
  EXPECT_EQ(num_nodes, 4);
}

TEST(IoMalformedTest, LabelsRejectEveryBadLine) {
  const struct {
    const char* tag;
    const char* contents;
  } kCases[] = {
      {"negative", "0\n-1\n"},
      {"non_numeric", "0\nx\n"},
      {"trailing_garbage", "0\n1 junk\n"},
      {"float_label", "0\n1.5\n"},
      {"overflow", "99999999999999999999\n"},
  };
  for (const auto& test_case : kCases) {
    const std::string path = WriteTempFile(test_case.tag, test_case.contents);
    std::vector<int> labels;
    EXPECT_FALSE(LoadLabels(path, &labels)) << test_case.tag;
  }
}

TEST(IoMalformedTest, LabelsRespectTheClaimedClassCount) {
  const std::string path = WriteTempFile("classes", "0\n1\n2\n");
  std::vector<int> labels;
  EXPECT_FALSE(LoadLabels(path, &labels, /*num_classes=*/2));
  ASSERT_TRUE(LoadLabels(path, &labels, /*num_classes=*/3));
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2}));
  // Default -1 means "no claim": any non-negative label passes.
  EXPECT_TRUE(LoadLabels(path, &labels));
}

TEST(IoMalformedTest, MatrixCsvRejectsEveryBadCell) {
  const struct {
    const char* tag;
    const char* contents;
  } kCases[] = {
      {"ragged_short", "1,2,3\n4,5\n"},
      {"ragged_long", "1,2\n3,4,5\n"},
      {"partial_number", "1.5abc,2\n"},
      {"empty_cell", "1,,3\n"},
      {"nan_cell", "1,nan\n"},
      {"inf_cell", "inf,2\n"},
      {"overflow_cell", "1e99999,2\n"},
      {"words", "hello,world\n"},
  };
  for (const auto& test_case : kCases) {
    const std::string path = WriteTempFile(test_case.tag, test_case.contents);
    Matrix matrix;
    EXPECT_FALSE(LoadMatrixCsv(path, &matrix)) << test_case.tag;
  }
}

TEST(IoMalformedTest, MatrixCsvToleratesCrlfAndPadding) {
  const std::string path =
      WriteTempFile("crlf_csv", "1.0, 2.0\r\n3.0,\t4.0\r\n");
  Matrix matrix;
  ASSERT_TRUE(LoadMatrixCsv(path, &matrix));
  ASSERT_EQ(matrix.rows(), 2);
  ASSERT_EQ(matrix.cols(), 2);
  EXPECT_FLOAT_EQ(matrix(1, 1), 4.0f);
}

TEST(IoMalformedTest, LoadGraphFailsCleanlyOnAnyBadPiece) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveEdgeList(dir + "/mf_edges.txt", {{0, 1}, {1, 2}}));
  ASSERT_TRUE(SaveMatrixCsv(dir + "/mf_feats.csv", Matrix::Ones(3, 2)));
  const std::string bad_labels = WriteTempFile("graph_labels", "0\n1\nx\n");

  std::unique_ptr<Graph> graph;
  EXPECT_FALSE(LoadGraph("bad", dir + "/mf_edges.txt", dir + "/mf_feats.csv",
                         bad_labels, &graph));
  EXPECT_EQ(graph, nullptr);
}

}  // namespace
}  // namespace skipnode
