// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/splits.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace skipnode {
namespace {

std::set<int> ToSet(const std::vector<int>& v) {
  return std::set<int>(v.begin(), v.end());
}

bool Disjoint(const std::set<int>& a, const std::set<int>& b) {
  for (const int x : a) {
    if (b.count(x) > 0) return false;
  }
  return true;
}

TEST(PublicSplitTest, CountsAndDisjointness) {
  Graph graph = BuildDatasetByName("cora_like", 0.5, 1);
  Rng rng(1);
  Split split = PublicSplit(graph, 20, 300, 500, rng);

  EXPECT_EQ(split.train.size(), 20u * graph.num_classes());
  EXPECT_EQ(split.val.size(), 300u);
  EXPECT_EQ(split.test.size(), 500u);

  const std::set<int> train = ToSet(split.train);
  const std::set<int> val = ToSet(split.val);
  const std::set<int> test = ToSet(split.test);
  EXPECT_TRUE(Disjoint(train, val));
  EXPECT_TRUE(Disjoint(train, test));
  EXPECT_TRUE(Disjoint(val, test));
}

TEST(PublicSplitTest, TrainIsClassBalanced) {
  Graph graph = BuildDatasetByName("cora_like", 0.5, 2);
  Rng rng(2);
  Split split = PublicSplit(graph, 15, 100, 100, rng);
  std::vector<int> per_class(graph.num_classes(), 0);
  for (const int node : split.train) per_class[graph.labels()[node]] += 1;
  for (const int count : per_class) EXPECT_EQ(count, 15);
}

TEST(PublicSplitTest, ClampsOversizedRequests) {
  Graph graph = BuildDatasetByName("cornell_like", 1.0, 3);  // 183 nodes.
  Rng rng(3);
  Split split = PublicSplit(graph, 10, 1000, 1000, rng);
  EXPECT_LE(static_cast<int>(split.train.size() + split.val.size() +
                             split.test.size()),
            graph.num_nodes());
  EXPECT_FALSE(split.val.empty());
  EXPECT_FALSE(split.test.empty());
}

TEST(RandomSplitTest, FractionsAndStratification) {
  Graph graph = BuildDatasetByName("citeseer_like", 0.5, 4);
  Rng rng(4);
  Split split = RandomSplit(graph, 0.6, 0.2, rng);
  const int n = graph.num_nodes();
  EXPECT_NEAR(static_cast<double>(split.train.size()) / n, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(split.val.size()) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(split.test.size()) / n, 0.2, 0.02);

  // Stratified: every class appears in train.
  std::vector<int> per_class(graph.num_classes(), 0);
  for (const int node : split.train) per_class[graph.labels()[node]] += 1;
  for (const int count : per_class) EXPECT_GT(count, 0);
}

TEST(RandomSplitTest, PartitionsAllNodes) {
  Graph graph = BuildDatasetByName("texas_like", 1.0, 5);
  Rng rng(5);
  Split split = RandomSplit(graph, 0.6, 0.2, rng);
  EXPECT_EQ(static_cast<int>(split.train.size() + split.val.size() +
                             split.test.size()),
            graph.num_nodes());
}

TEST(TemporalSplitTest, SplitsByYear) {
  Graph graph = BuildDatasetByName("arxiv_like", 0.1, 6);
  Split split = TemporalSplit(graph, 2017);
  for (const int node : split.train) EXPECT_LE(graph.years()[node], 2017);
  for (const int node : split.val) EXPECT_EQ(graph.years()[node], 2018);
  for (const int node : split.test) EXPECT_GE(graph.years()[node], 2019);
  EXPECT_EQ(static_cast<int>(split.train.size() + split.val.size() +
                             split.test.size()),
            graph.num_nodes());
}

TEST(LinkSplitTest, PartitionsEdgesAndSamplesNegatives) {
  Graph graph = BuildDatasetByName("ppa_like", 0.05, 7);
  Rng rng(7);
  LinkSplit split = MakeLinkSplit(graph, 0.1, 0.2, 500, rng);

  EXPECT_EQ(static_cast<int>(split.train_edges.size() + split.val_pos.size() +
                             split.test_pos.size()),
            graph.num_edges());
  EXPECT_NEAR(static_cast<double>(split.val_pos.size()) / graph.num_edges(),
              0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(split.test_pos.size()) / graph.num_edges(),
              0.2, 0.01);
  EXPECT_EQ(split.eval_neg.size(), 500u);

  // Negatives are not real edges and contain no duplicates.
  std::set<std::pair<int, int>> edges(graph.edges().begin(),
                                      graph.edges().end());
  std::set<std::pair<int, int>> negatives;
  for (auto [u, v] : split.eval_neg) {
    if (u > v) std::swap(u, v);
    EXPECT_EQ(edges.count({u, v}), 0u);
    EXPECT_TRUE(negatives.insert({u, v}).second);
  }
}

}  // namespace
}  // namespace skipnode
