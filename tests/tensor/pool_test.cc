// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/pool.h"

#include <utility>

#include <gtest/gtest.h>

#include "base/aligned.h"
#include "base/telemetry.h"

namespace skipnode {
namespace {

TEST(MatrixPoolTest, AcquireReturnsZeroedMatrixOfRequestedShape) {
  MatrixPool pool;
  Matrix m = pool.Acquire(3, 5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 5);
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixPoolTest, ReleaseThenAcquireRecyclesAndRezeroes) {
  MatrixPool pool;
  Matrix m = pool.Acquire(4, 4);
  m(0, 0) = 7.0f;
  m(3, 3) = -2.5f;
  pool.Release(std::move(m));
  EXPECT_EQ(pool.BucketSize(4, 4), 1);

  Matrix recycled = pool.Acquire(4, 4);
  EXPECT_EQ(pool.BucketSize(4, 4), 0);
  // The recycled buffer must be indistinguishable from a fresh Matrix(4, 4).
  for (int64_t i = 0; i < recycled.size(); ++i) {
    EXPECT_EQ(recycled.data()[i], 0.0f);
  }
}

TEST(MatrixPoolTest, BucketsAreShapeExact) {
  MatrixPool pool;
  pool.Release(pool.Acquire(2, 6));
  // Same element count, different shape: no recycling across buckets.
  EXPECT_EQ(pool.BucketSize(2, 6), 1);
  Matrix other = pool.Acquire(3, 4);
  EXPECT_EQ(pool.BucketSize(2, 6), 1);
  EXPECT_EQ(pool.BucketSize(3, 4), 0);
  pool.Release(std::move(other));
  EXPECT_EQ(pool.BucketSize(3, 4), 1);
}

TEST(MatrixPoolTest, ClearFreesEverything) {
  MatrixPool pool;
  pool.Release(pool.Acquire(2, 2));
  pool.Release(pool.Acquire(5, 1));
  pool.Clear();
  EXPECT_EQ(pool.BucketSize(2, 2), 0);
  EXPECT_EQ(pool.BucketSize(5, 1), 0);
}

TEST(MatrixPoolTest, EmptyMatricesAreNeverPooled) {
  MatrixPool pool;
  pool.Release(pool.Acquire(0, 3));
  EXPECT_EQ(pool.BucketSize(0, 3), 0);
}

TEST(MatrixPoolTest, BucketIsCapped) {
  MatrixPool pool;
  for (int i = 0; i < MatrixPool::kMaxBuffersPerBucket + 10; ++i) {
    pool.Release(Matrix(1, 3));
  }
  EXPECT_EQ(pool.BucketSize(1, 3), MatrixPool::kMaxBuffersPerBucket);
}

TEST(MatrixPoolTest, DisabledPoolAllocatesAndFrees) {
  MatrixPool pool;
  SetMatrixPoolEnabled(false);
  pool.Release(pool.Acquire(2, 2));
  EXPECT_EQ(pool.BucketSize(2, 2), 0);

  // A buffer pooled while enabled is not handed out while disabled.
  SetMatrixPoolEnabled(true);
  pool.Release(pool.Acquire(2, 2));
  EXPECT_EQ(pool.BucketSize(2, 2), 1);
  SetMatrixPoolEnabled(false);
  Matrix fresh = pool.Acquire(2, 2);
  EXPECT_EQ(fresh.rows(), 2);
  EXPECT_EQ(pool.BucketSize(2, 2), 1);
  SetMatrixPoolEnabled(true);
}

TEST(MatrixPoolTest, BytesRetainedTracksReleasesAndAcquires) {
  MatrixPool pool;
  EXPECT_EQ(pool.bytes_retained(), 0);
  pool.Release(pool.Acquire(2, 3));
  EXPECT_EQ(pool.bytes_retained(), 2 * 3 * 4);
  pool.Release(pool.Acquire(5, 1));
  EXPECT_EQ(pool.bytes_retained(), 2 * 3 * 4 + 5 * 4);
  Matrix m = pool.Acquire(2, 3);  // pops the (2, 3) buffer
  EXPECT_EQ(pool.bytes_retained(), 5 * 4);
  pool.Clear();
  EXPECT_EQ(pool.bytes_retained(), 0);
}

TEST(MatrixPoolTest, BucketByteCapFreesOverflow) {
  MatrixPool pool;
  // Rows sized so two buffers fit under the byte cap but three do not.
  const int64_t cap_rows = MatrixPool::kMaxBytesPerBucket / (2LL * 4) / 2;
  ASSERT_LT(cap_rows, static_cast<int64_t>(1) << 31);
  const int rows = static_cast<int>(cap_rows);
  for (int i = 0; i < 3; ++i) pool.Release(Matrix(rows, 2));
  EXPECT_EQ(pool.BucketSize(rows, 2), 2);
  EXPECT_LE(pool.bytes_retained(), MatrixPool::kMaxBytesPerBucket);
  pool.Clear();
}

TEST(MatrixPoolTest, TrimFreesLargestShapesFirst) {
  MatrixPool pool;
  pool.Release(Matrix(2, 2));    // 16 bytes
  pool.Release(Matrix(10, 10));  // 400 bytes
  pool.Release(Matrix(50, 10));  // 2000 bytes
  EXPECT_EQ(pool.bytes_retained(), 16 + 400 + 2000);

  // Trimming to 500 bytes must drop the big buffer and keep the small ones.
  const int64_t freed = pool.Trim(500);
  EXPECT_EQ(freed, 2000);
  EXPECT_EQ(pool.bytes_retained(), 416);
  EXPECT_EQ(pool.BucketSize(50, 10), 0);
  EXPECT_EQ(pool.BucketSize(10, 10), 1);
  EXPECT_EQ(pool.BucketSize(2, 2), 1);

  // Trim(0) empties the pool and reports the remainder.
  EXPECT_EQ(pool.Trim(0), 416);
  EXPECT_EQ(pool.bytes_retained(), 0);
  EXPECT_EQ(pool.Trim(0), 0);
}

TEST(MatrixPoolTest, BytesRetainedTelemetryIsSigned) {
  MatrixPool pool;
  SetTelemetryEnabled(true);
  ResetTelemetry();
  pool.Release(pool.Acquire(4, 4));   // +64 bytes
  Matrix m = pool.Acquire(4, 4);      // -64 bytes (recycled)
  pool.Release(std::move(m));         // +64 bytes
  pool.Trim(0);                       // -64 bytes
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  SetTelemetryEnabled(false);

  const MetricStat* retained = snapshot.Find("pool.bytes_retained");
  ASSERT_NE(retained, nullptr);
  // The running item total nets to zero: everything parked was released.
  EXPECT_EQ(retained->items, 0);
  EXPECT_EQ(pool.bytes_retained(), 0);
}

TEST(MatrixPoolTest, TelemetryCountsHitsAndMisses) {
  MatrixPool pool;
  SetTelemetryEnabled(true);
  ResetTelemetry();
  Matrix m = pool.Acquire(2, 3);            // miss
  pool.Release(std::move(m));
  Matrix again = pool.Acquire(2, 3);        // hit
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  SetTelemetryEnabled(false);

  const MetricStat* hit = snapshot.Find("pool.hit");
  const MetricStat* miss = snapshot.Find("pool.miss");
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(hit->count, 1);
  EXPECT_EQ(miss->count, 1);
  // items carries the buffer element count (2 x 3).
  EXPECT_EQ(hit->items, 6);
}


TEST(MatrixPoolTest, AcquiredAndRecycledBuffersAreCacheLineAligned) {
  MatrixPool pool;
  Matrix fresh = pool.Acquire(3, 7);
  EXPECT_TRUE(IsBufferAligned(fresh.data()));
  pool.Release(std::move(fresh));
  Matrix recycled = pool.Acquire(3, 7);  // Pool hit: the same 64B buffer.
  EXPECT_TRUE(IsBufferAligned(recycled.data()));
}

}  // namespace
}  // namespace skipnode
