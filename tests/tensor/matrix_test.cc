// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.size(), 12);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0.0f);
  }
}

TEST(MatrixTest, FromDataRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 2), 3.0f);
  EXPECT_EQ(m.at(1, 0), 4.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(MatrixTest, RowPointerMatchesAt) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.row(1)[2], m.at(1, 2));
}

TEST(MatrixTest, FillAndSetZero) {
  Matrix m(2, 2);
  m.Fill(3.5f);
  EXPECT_EQ(m.Sum(), 14.0f);
  m.SetZero();
  EXPECT_EQ(m.Sum(), 0.0f);
}

TEST(MatrixTest, IdentityFactory) {
  Matrix id = Matrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(id.at(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, OnesFactory) {
  Matrix ones = Matrix::Ones(4, 5);
  EXPECT_EQ(ones.Sum(), 20.0f);
  EXPECT_EQ(ones.Mean(), 1.0f);
}

TEST(MatrixTest, RandomWithinBounds) {
  Rng rng(1);
  Matrix m = Matrix::Random(20, 20, rng, -0.5f, 0.5f);
  EXPECT_LE(m.AbsMax(), 0.5f);
  EXPECT_NE(m.Sum(), 0.0f);
}

TEST(MatrixTest, RandomNormalStddev) {
  Rng rng(2);
  Matrix m = Matrix::RandomNormal(100, 100, rng, 2.0f);
  const float variance = m.SquaredNorm() / static_cast<float>(m.size());
  EXPECT_NEAR(variance, 4.0f, 0.3f);
}

TEST(MatrixTest, GlorotUniformBound) {
  Rng rng(3);
  Matrix m = Matrix::GlorotUniform(30, 20, rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  EXPECT_LE(m.AbsMax(), bound + 1e-6f);
}

TEST(MatrixTest, Norms) {
  Matrix m(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(m.SquaredNorm(), 25.0f);
  EXPECT_FLOAT_EQ(m.AbsMax(), 4.0f);
}

TEST(MatrixTest, SameShape) {
  Matrix a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
}

TEST(MatrixTest, ShapeString) {
  Matrix m(7, 9);
  EXPECT_EQ(m.ShapeString(), "Matrix(7x9)");
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(1, 1, {1.0f});
  Matrix b = a;
  b.at(0, 0) = 2.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);
}

}  // namespace
}  // namespace skipnode
