// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/matrix.h"

#include <cmath>
#include <utility>
#include <vector>

#include "base/aligned.h"

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.size(), 12);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0.0f);
  }
}

TEST(MatrixTest, FromDataRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 2), 3.0f);
  EXPECT_EQ(m.at(1, 0), 4.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(MatrixTest, RowPointerMatchesAt) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.row(1)[2], m.at(1, 2));
}

TEST(MatrixTest, FillAndSetZero) {
  Matrix m(2, 2);
  m.Fill(3.5f);
  EXPECT_EQ(m.Sum(), 14.0f);
  m.SetZero();
  EXPECT_EQ(m.Sum(), 0.0f);
}

TEST(MatrixTest, IdentityFactory) {
  Matrix id = Matrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(id.at(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, OnesFactory) {
  Matrix ones = Matrix::Ones(4, 5);
  EXPECT_EQ(ones.Sum(), 20.0f);
  EXPECT_EQ(ones.Mean(), 1.0f);
}

TEST(MatrixTest, RandomWithinBounds) {
  Rng rng(1);
  Matrix m = Matrix::Random(20, 20, rng, -0.5f, 0.5f);
  EXPECT_LE(m.AbsMax(), 0.5f);
  EXPECT_NE(m.Sum(), 0.0f);
}

TEST(MatrixTest, RandomNormalStddev) {
  Rng rng(2);
  Matrix m = Matrix::RandomNormal(100, 100, rng, 2.0f);
  const float variance = m.SquaredNorm() / static_cast<float>(m.size());
  EXPECT_NEAR(variance, 4.0f, 0.3f);
}

TEST(MatrixTest, GlorotUniformBound) {
  Rng rng(3);
  Matrix m = Matrix::GlorotUniform(30, 20, rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  EXPECT_LE(m.AbsMax(), bound + 1e-6f);
}

TEST(MatrixTest, Norms) {
  Matrix m(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(m.SquaredNorm(), 25.0f);
  EXPECT_FLOAT_EQ(m.AbsMax(), 4.0f);
}

TEST(MatrixTest, SameShape) {
  Matrix a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
}

TEST(MatrixTest, ShapeString) {
  Matrix m(7, 9);
  EXPECT_EQ(m.ShapeString(), "Matrix(7x9)");
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(1, 1, {1.0f});
  Matrix b = a;
  b.at(0, 0) = 2.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);
}


TEST(MatrixTest, StorageIsCacheLineAligned) {
  // Every Matrix draws from the shared 64-byte-aligned allocator
  // (base/aligned.h) so vector loads never straddle a cache line.
  Matrix a(1, 1);
  Matrix b(7, 13);
  Matrix c(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(IsBufferAligned(a.data()));
  EXPECT_TRUE(IsBufferAligned(b.data()));
  EXPECT_TRUE(IsBufferAligned(c.data()));
  Matrix moved = std::move(b);
  EXPECT_TRUE(IsBufferAligned(moved.data()));
}

TEST(MatrixTest, CopyingVectorConstructorMatchesAdoptingOne) {
  const std::vector<float> values = {1.5f, -2.0f, 0.25f, 4.0f};
  Matrix from_vector(2, 2, values);
  Matrix from_list(2, 2, {1.5f, -2.0f, 0.25f, 4.0f});
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(from_vector.data()[i], from_list.data()[i]);
  }
  EXPECT_TRUE(IsBufferAligned(from_vector.data()));
}

}  // namespace
}  // namespace skipnode
