// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/ops.h"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include <vector>

#include "base/aligned.h"
#include "base/parallel.h"
#include "base/simd.h"
#include "base/rng.h"

namespace skipnode {
namespace {

// Reference O(n^3) matmul for property checks.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double total = 0.0;
      for (int p = 0; p < a.cols(); ++p) {
        total += static_cast<double>(a(i, p)) * b(p, j);
      }
      out(i, j) = static_cast<float>(total);
    }
  }
  return out;
}

TEST(OpsTest, MatMulMatchesNaive) {
  Rng rng(1);
  Matrix a = Matrix::Random(7, 5, rng);
  Matrix b = Matrix::Random(5, 9, rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, b), NaiveMatMul(a, b)), 1e-4f);
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(2);
  Matrix a = Matrix::Random(6, 6, rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, Matrix::Identity(6)), a), 1e-6f);
  EXPECT_LT(MaxAbsDiff(MatMul(Matrix::Identity(6), a), a), 1e-6f);
}

TEST(OpsTest, MatMulTransposeAMatchesExplicitTranspose) {
  Rng rng(3);
  Matrix a = Matrix::Random(8, 4, rng);
  Matrix b = Matrix::Random(8, 5, rng);
  EXPECT_LT(MaxAbsDiff(MatMulTransposeA(a, b), MatMul(Transpose(a), b)),
            1e-4f);
}

TEST(OpsTest, MatMulTransposeBMatchesExplicitTranspose) {
  Rng rng(4);
  Matrix a = Matrix::Random(6, 7, rng);
  Matrix b = Matrix::Random(5, 7, rng);
  EXPECT_LT(MaxAbsDiff(MatMulTransposeB(a, b), MatMul(a, Transpose(b))),
            1e-4f);
}

TEST(OpsTest, AccumulateVariantsAdd) {
  Rng rng(5);
  Matrix a = Matrix::Random(4, 4, rng);
  Matrix b = Matrix::Random(4, 4, rng);
  Matrix out = Matrix::Ones(4, 4);
  MatMulAccumulate(a, b, out);
  EXPECT_LT(MaxAbsDiff(out, Add(MatMul(a, b), Matrix::Ones(4, 4))), 1e-5f);
}

TEST(OpsTest, ElementwiseOps) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  EXPECT_LT(MaxAbsDiff(Add(a, b), Matrix(1, 3, {5, 7, 9})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Sub(b, a), Matrix(1, 3, {3, 3, 3})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Hadamard(a, b), Matrix(1, 3, {4, 10, 18})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Scale(a, 2.0f), Matrix(1, 3, {2, 4, 6})), 1e-6f);
}

TEST(OpsTest, AddScaledAccumulates) {
  Matrix a(1, 2, {1, 2});
  Matrix out(1, 2, {10, 20});
  AddScaled(a, 3.0f, out);
  EXPECT_LT(MaxAbsDiff(out, Matrix(1, 2, {13, 26})), 1e-6f);
}

TEST(OpsTest, ReluClampsNegatives) {
  Matrix x(1, 4, {-1, 0, 2, -3});
  EXPECT_LT(MaxAbsDiff(Relu(x), Matrix(1, 4, {0, 0, 2, 0})), 1e-6f);
}

TEST(OpsTest, ReluBackwardMasksByInput) {
  Matrix x(1, 4, {-1, 0.5f, 2, -3});
  Matrix g(1, 4, {10, 10, 10, 10});
  EXPECT_LT(MaxAbsDiff(ReluBackward(x, g), Matrix(1, 4, {0, 10, 10, 0})),
            1e-6f);
}

TEST(OpsTest, TransposeRoundTrip) {
  Rng rng(6);
  Matrix a = Matrix::Random(5, 8, rng);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-6f);
}

TEST(OpsTest, ConcatColsLaysOutParts) {
  Matrix a(2, 1, {1, 3});
  Matrix b(2, 2, {10, 20, 30, 40});
  Matrix joined = ConcatCols({&a, &b});
  EXPECT_LT(MaxAbsDiff(joined, Matrix(2, 3, {1, 10, 20, 3, 30, 40})), 1e-6f);
}

TEST(OpsTest, GatherScatterRoundTrip) {
  Matrix x(4, 2, {0, 1, 10, 11, 20, 21, 30, 31});
  const std::vector<int> rows = {2, 0, 2};
  Matrix gathered = GatherRows(x, rows);
  EXPECT_LT(MaxAbsDiff(gathered, Matrix(3, 2, {20, 21, 0, 1, 20, 21})),
            1e-6f);
  Matrix accum(4, 2);
  ScatterAddRows(gathered, rows, accum);
  // Row 2 received two copies, row 0 one.
  EXPECT_FLOAT_EQ(accum.at(2, 0), 40.0f);
  EXPECT_FLOAT_EQ(accum.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(accum.at(1, 0), 0.0f);
}

TEST(OpsTest, ColumnMeansAndSubtract) {
  Matrix x(2, 2, {1, 2, 3, 4});
  Matrix means = ColumnMeans(x);
  EXPECT_LT(MaxAbsDiff(means, Matrix(1, 2, {2, 3})), 1e-6f);
  Matrix centered = SubtractRowVector(x, means);
  EXPECT_LT(MaxAbsDiff(ColumnMeans(centered), Matrix(1, 2)), 1e-6f);
}

TEST(OpsTest, RowSoftmaxSumsToOne) {
  Rng rng(7);
  Matrix x = Matrix::Random(5, 6, rng, -3.0f, 3.0f);
  Matrix p = RowSoftmax(x);
  for (int r = 0; r < p.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < p.cols(); ++c) {
      EXPECT_GT(p(r, c), 0.0f);
      total += p(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(OpsTest, LogSoftmaxMatchesSoftmax) {
  Rng rng(8);
  Matrix x = Matrix::Random(4, 5, rng, -2.0f, 2.0f);
  Matrix p = RowSoftmax(x);
  Matrix lp = RowLogSoftmax(x);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(std::exp(lp(r, c)), p(r, c), 1e-5f);
    }
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Matrix x(1, 3, {1, 2, 3});
  Matrix shifted(1, 3, {1001, 1002, 1003});
  EXPECT_LT(MaxAbsDiff(RowSoftmax(x), RowSoftmax(shifted)), 1e-5f);
}

TEST(OpsTest, RowNormsAndDots) {
  Matrix a(2, 2, {3, 4, 1, 0});
  Matrix norms = RowNorms(a);
  EXPECT_FLOAT_EQ(norms.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(norms.at(1, 0), 1.0f);
  Matrix b(2, 2, {1, 1, 2, 5});
  Matrix dots = RowDots(a, b);
  EXPECT_FLOAT_EQ(dots.at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(dots.at(1, 0), 2.0f);
}

TEST(OpsTest, CosineSimilarityBasics) {
  const float a[] = {1, 0};
  const float b[] = {0, 1};
  const float c[] = {2, 0};
  EXPECT_NEAR(CosineSimilarity(a, b, 2), 0.0f, 1e-6f);
  EXPECT_NEAR(CosineSimilarity(a, c, 2), 1.0f, 1e-6f);
  const float zero[] = {0, 0};
  EXPECT_EQ(CosineSimilarity(a, zero, 2), 0.0f);
}

TEST(OpsTest, GemmColumnBlockingIsBitwiseExact) {
  // The untransposed kernel walks the output in 256-column panels for
  // locality; its contract is that each element is still accumulated in
  // plain p-ascending float order. Cross several panel boundaries and
  // check every element against that exact serial recurrence.
  Rng rng(31);
  const Matrix a = Matrix::Random(5, 37, rng);
  const Matrix b = Matrix::Random(37, 600, rng);

  Matrix out(5, 600);
  Gemm(a, b, out);
  Matrix accumulated = Matrix::Ones(5, 600);
  Gemm(a, b, accumulated, {.accumulate = true});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 600; ++j) {
      float acc = 0.0f;
      float acc_from_one = 1.0f;
      for (int p = 0; p < 37; ++p) {
        acc += a(i, p) * b(p, j);
        acc_from_one += a(i, p) * b(p, j);
      }
      EXPECT_EQ(out(i, j), acc) << i << "," << j;
      EXPECT_EQ(accumulated(i, j), acc_from_one) << i << "," << j;
    }
  }

  // And the panels must not interact with row sharding: 4 threads bitwise
  // match 1 thread on a panel-crossing width.
  SetParallelThreadCount(1);
  Matrix serial(5, 600);
  Gemm(a, b, serial);
  SetParallelThreadCount(4);
  Matrix threaded(5, 600);
  Gemm(a, b, threaded);
  SetParallelThreadCount(0);
  EXPECT_EQ(MaxAbsDiff(serial, threaded), 0.0f);
}

TEST(OpsTest, GemmBothTransposesMatchesExplicitTransposes) {
  Rng rng(11);
  Matrix a = Matrix::Random(6, 4, rng);   // op(A) = A^T is 4 x 6.
  Matrix b = Matrix::Random(5, 6, rng);   // op(B) = B^T is 6 x 5.
  Matrix out(4, 5);
  Gemm(a, b, out, {.transpose_a = true, .transpose_b = true});
  EXPECT_LT(MaxAbsDiff(out, MatMul(Transpose(a), Transpose(b))), 1e-4f);
}

TEST(OpsTest, GemmAccumulateAddsOntoExistingOutput) {
  Rng rng(12);
  Matrix a = Matrix::Random(5, 3, rng);
  Matrix b = Matrix::Random(3, 4, rng);
  Matrix out = Matrix::Ones(5, 4);
  Gemm(a, b, out, {.accumulate = true});
  EXPECT_LT(MaxAbsDiff(out, Add(MatMul(a, b), Matrix::Ones(5, 4))), 1e-5f);
  // Without accumulate the old contents are discarded.
  Gemm(a, b, out);
  EXPECT_LT(MaxAbsDiff(out, MatMul(a, b)), 1e-6f);
}

// True bitwise equality, not an epsilon: the parallel partition must not
// change a single accumulation order.
void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), sizeof(float) * a.size()), 0);
}

TEST(OpsTest, GemmIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(13);
  // Big enough that ParallelFor actually fans out past min_per_thread.
  Matrix a = Matrix::Random(192, 96, rng);
  Matrix b = Matrix::Random(96, 64, rng);
  Matrix at = Transpose(a);  // For the transpose_a path: 96 x 192.
  Matrix bt = Transpose(b);  // For the transpose_b path: 64 x 96.

  const GemmOptions variants[] = {
      {},
      {.transpose_a = true},
      {.transpose_b = true},
      {.transpose_a = true, .transpose_b = true},
      {.accumulate = true},
      {.transpose_a = true, .accumulate = true},
  };
  for (const GemmOptions& options : variants) {
    const Matrix& lhs = options.transpose_a ? at : a;
    const Matrix& rhs = options.transpose_b ? bt : b;
    SetParallelThreadCount(1);
    Matrix serial = Matrix::Ones(192, 64);
    Gemm(lhs, rhs, serial, options);
    SetParallelThreadCount(4);
    Matrix threaded = Matrix::Ones(192, 64);
    Gemm(lhs, rhs, threaded, options);
    SetParallelThreadCount(0);
    ExpectBitwiseEqual(serial, threaded);
  }
}

TEST(OpsTest, RowOpsAreBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(14);
  Matrix x = Matrix::Random(512, 32, rng, -3.0f, 3.0f);
  SetParallelThreadCount(1);
  Matrix soft1 = RowSoftmax(x), logsoft1 = RowLogSoftmax(x);
  Matrix norms1 = RowNorms(x), relu1 = Relu(x);
  SetParallelThreadCount(4);
  Matrix soft4 = RowSoftmax(x), logsoft4 = RowLogSoftmax(x);
  Matrix norms4 = RowNorms(x), relu4 = Relu(x);
  SetParallelThreadCount(0);
  ExpectBitwiseEqual(soft1, soft4);
  ExpectBitwiseEqual(logsoft1, logsoft4);
  ExpectBitwiseEqual(norms1, norms4);
  ExpectBitwiseEqual(relu1, relu4);
}

TEST(OpsTest, NonFiniteScansFindNothingInCleanMatrices) {
  Rng rng(21);
  Matrix x = Matrix::Random(64, 8, rng, -10.0f, 10.0f);
  EXPECT_FALSE(HasNonFinite(x));
  EXPECT_EQ(CountNonFinite(x), 0);
  const std::vector<uint8_t> flags = RowNonFiniteFlags(x);
  for (const uint8_t flag : flags) EXPECT_EQ(flag, 0);
}

TEST(OpsTest, NonFiniteScansFlagNanAndInfPerRow) {
  Matrix x = Matrix::Ones(5, 4);
  x(1, 2) = std::numeric_limits<float>::quiet_NaN();
  x(3, 0) = std::numeric_limits<float>::infinity();
  x(3, 3) = -std::numeric_limits<float>::infinity();
  EXPECT_TRUE(HasNonFinite(x));
  EXPECT_EQ(CountNonFinite(x), 3);
  EXPECT_EQ(RowNonFiniteFlags(x),
            (std::vector<uint8_t>{0, 1, 0, 1, 0}));
}

TEST(OpsTest, MaxRowNormPicksTheLargestRow) {
  Matrix x(3, 2);
  x(1, 0) = 3.0f;
  x(1, 1) = 4.0f;  // Row norm 5.
  x(2, 0) = 1.0f;
  EXPECT_FLOAT_EQ(MaxRowNorm(x), 5.0f);
  EXPECT_FLOAT_EQ(MaxRowNorm(Matrix()), 0.0f);
}

TEST(OpsTest, HealthScansAreBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(22);
  Matrix x = Matrix::Random(700, 40, rng, -5.0f, 5.0f);
  x(123, 7) = std::numeric_limits<float>::quiet_NaN();
  x(600, 0) = std::numeric_limits<float>::infinity();
  SetParallelThreadCount(1);
  const std::vector<uint8_t> flags1 = RowNonFiniteFlags(x);
  const int64_t count1 = CountNonFinite(x);
  const float norm1 = MaxRowNorm(x);
  SetParallelThreadCount(4);
  const std::vector<uint8_t> flags4 = RowNonFiniteFlags(x);
  const int64_t count4 = CountNonFinite(x);
  const float norm4 = MaxRowNorm(x);
  SetParallelThreadCount(0);
  EXPECT_EQ(flags1, flags4);
  EXPECT_EQ(count1, count4);
  EXPECT_EQ(count1, 2);
  // NaN != NaN, so compare the bit patterns.
  EXPECT_EQ(std::memcmp(&norm1, &norm4, sizeof(norm1)), 0);
}

TEST(OpsTest, MaxSingularValueOfDiagonal) {
  Matrix w(3, 3);
  w.at(0, 0) = 0.5f;
  w.at(1, 1) = 2.0f;
  w.at(2, 2) = 1.0f;
  EXPECT_NEAR(MaxSingularValue(w), 2.0f, 1e-3f);
}

TEST(OpsTest, MaxSingularValueScalesLinearly) {
  Rng rng(9);
  Matrix w = Matrix::Random(10, 6, rng);
  const float sigma = MaxSingularValue(w);
  EXPECT_NEAR(MaxSingularValue(Scale(w, 3.0f)), 3.0f * sigma, 2e-2f * sigma);
}

TEST(OpsTest, SetMaxSingularValueHitsTarget) {
  Rng rng(10);
  Matrix w = Matrix::Random(12, 12, rng);
  SetMaxSingularValue(w, 0.25f);
  EXPECT_NEAR(MaxSingularValue(w), 0.25f, 5e-3f);
}


TEST(OpsTest, AxpbyIntoMatchesScaleIntoPlusAddScaledBitwise) {
  Rng rng(11);
  const Matrix a = Matrix::Random(13, 19, rng);
  const Matrix b = Matrix::Random(13, 19, rng);
  Matrix fused(13, 19), staged(13, 19);
  AxpbyInto(a, b, 0.7f, -1.3f, fused);
  ScaleInto(a, 0.7f, staged);
  AddScaled(b, -1.3f, staged);
  EXPECT_EQ(std::memcmp(fused.data(), staged.data(),
                        sizeof(float) * static_cast<size_t>(fused.size())),
            0);
}

// Every vectorized tensor kernel must match the scalar reference bitwise —
// the DESIGN section 14 exact-path contract — at odd (tail-leaving) shapes
// and any thread count.
TEST(OpsTest, VectorizedKernelsMatchScalarReferenceBitwise) {
  const bool saved = simd::Enabled();
  Rng rng(12);
  const int m = 13, k = 17, n = 19;
  const Matrix a = Matrix::Random(m, k, rng);
  const Matrix b = Matrix::Random(k, n, rng);
  const Matrix at = Transpose(a);
  const Matrix bt = Transpose(b);
  const Matrix x = Matrix::Random(m, n, rng);
  const Matrix y = Matrix::Random(m, n, rng);
  const Matrix v = Matrix::Random(1, n, rng);

  auto run_all = [&]() {
    std::vector<Matrix> outs;
    Matrix nn(m, n), tn(m, n), tb(m, n), tt(m, n);
    Gemm(a, b, nn);
    Gemm(at, b, tn, {.transpose_a = true});
    Gemm(a, bt, tb, {.transpose_b = true});
    Gemm(at, bt, tt, {.transpose_a = true, .transpose_b = true});
    outs.push_back(std::move(nn));
    outs.push_back(std::move(tn));
    outs.push_back(std::move(tb));
    outs.push_back(std::move(tt));
    outs.push_back(Add(x, y));
    outs.push_back(Sub(x, y));
    outs.push_back(Hadamard(x, y));
    outs.push_back(Scale(x, -0.3f));
    Matrix axpby(m, n);
    AxpbyInto(x, y, 0.5f, 1.5f, axpby);
    outs.push_back(std::move(axpby));
    outs.push_back(Relu(x));
    outs.push_back(ReluBackward(x, y));
    outs.push_back(SubtractRowVector(x, v));
    outs.push_back(RowSoftmax(x));
    outs.push_back(RowLogSoftmax(x));
    return outs;
  };

  simd::SetEnabled(false);
  SetParallelThreadCount(1);
  const std::vector<Matrix> reference = run_all();
  for (const bool vec : {false, true}) {
    simd::SetEnabled(vec);
    for (const int threads : {1, 4, 8}) {
      SetParallelThreadCount(threads);
      const std::vector<Matrix> got = run_all();
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(std::memcmp(got[i].data(), reference[i].data(),
                              sizeof(float) *
                                  static_cast<size_t>(got[i].size())),
                  0)
            << "kernel " << i << " simd=" << vec << " threads=" << threads;
      }
    }
  }
  SetParallelThreadCount(0);
  simd::SetEnabled(saved);
}

TEST(OpsTest, FastMathGemmIsToleranceCloseAndDeterministic) {
  // The reassociated dot path differs from the exact double-accumulation
  // one by rounding only, and its fixed lane-then-tree order keeps it
  // bitwise deterministic across thread counts and the runtime switch.
  Rng rng(13);
  const int m = 9, k = 131, n = 7;  // k leaves a 3-element lane tail.
  const Matrix a = Matrix::Random(m, k, rng);
  const Matrix bt = Matrix::Random(n, k, rng);
  Matrix exact(m, n);
  Gemm(a, bt, exact, {.transpose_b = true});
  Matrix fast(m, n);
  Gemm(a, bt, fast, {.transpose_b = true, .fast_math = true});
  for (int64_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], exact.data()[i],
                1e-4f * (1.0f + std::fabs(exact.data()[i])))
        << "element " << i;
  }

  const bool saved = simd::Enabled();
  for (const bool vec : {false, true}) {
    simd::SetEnabled(vec);
    for (const int threads : {1, 4, 8}) {
      SetParallelThreadCount(threads);
      Matrix again(m, n);
      Gemm(a, bt, again, {.transpose_b = true, .fast_math = true});
      EXPECT_EQ(std::memcmp(again.data(), fast.data(),
                            sizeof(float) * static_cast<size_t>(fast.size())),
                0)
          << "simd=" << vec << " threads=" << threads;
    }
  }
  SetParallelThreadCount(0);
  simd::SetEnabled(saved);
}

TEST(OpsTest, MatrixAndOpsOutputsAreCacheLineAligned) {
  Matrix m(5, 7);
  EXPECT_TRUE(IsBufferAligned(m.data()));
  Rng rng(14);
  Matrix r = Matrix::Random(3, 3, rng);
  EXPECT_TRUE(IsBufferAligned(Relu(r).data()));
}

}  // namespace
}  // namespace skipnode
