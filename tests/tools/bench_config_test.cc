// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// BenchConfig::FromEnv must reject unknown SKIPNODE_BENCH_SCALE /
// SKIPNODE_SIMD values with a clear abort instead of silently defaulting —
// a typo'd scale must not record a smoke run labelled as the requested one.

#include <cstdlib>

#include <gtest/gtest.h>

#include "bench_common.h"

namespace skipnode::bench {
namespace {

// Scoped setenv/unsetenv so cases cannot leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(BenchConfigTest, DefaultsAreSmokeWithSimdOn) {
  const ScopedEnv scale("SKIPNODE_BENCH_SCALE", nullptr);
  const ScopedEnv simd("SKIPNODE_SIMD", nullptr);
  const BenchConfig config = BenchConfig::FromEnv();
  EXPECT_EQ(config.scale, Scale::kSmoke);
  EXPECT_TRUE(config.simd);
}

TEST(BenchConfigTest, ParsesTheTwoValidScales) {
  {
    const ScopedEnv scale("SKIPNODE_BENCH_SCALE", "smoke");
    EXPECT_EQ(BenchConfig::FromEnv().scale, Scale::kSmoke);
  }
  {
    const ScopedEnv scale("SKIPNODE_BENCH_SCALE", "paper");
    EXPECT_EQ(BenchConfig::FromEnv().scale, Scale::kPaper);
  }
}

TEST(BenchConfigTest, ParsesTheSimdKillSwitch) {
  {
    const ScopedEnv simd("SKIPNODE_SIMD", "0");
    EXPECT_FALSE(BenchConfig::FromEnv().simd);
  }
  {
    const ScopedEnv simd("SKIPNODE_SIMD", "1");
    EXPECT_TRUE(BenchConfig::FromEnv().simd);
  }
}

TEST(BenchConfigDeathTest, RejectsUnknownScale) {
  EXPECT_DEATH(
      {
        const ScopedEnv scale("SKIPNODE_BENCH_SCALE", "warp");
        BenchConfig::FromEnv();
      },
      "SKIPNODE_BENCH_SCALE");
  EXPECT_DEATH(
      {
        const ScopedEnv scale("SKIPNODE_BENCH_SCALE", "Paper");
        BenchConfig::FromEnv();
      },
      "SKIPNODE_BENCH_SCALE");
}

TEST(BenchConfigDeathTest, RejectsUnknownSimdValue) {
  EXPECT_DEATH(
      {
        const ScopedEnv simd("SKIPNODE_SIMD", "banana");
        BenchConfig::FromEnv();
      },
      "SKIPNODE_SIMD");
}

}  // namespace
}  // namespace skipnode::bench
