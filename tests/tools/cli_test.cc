// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/io.h"

namespace skipnode {
namespace {

struct CliResult {
  int exit_code;
  std::string output;
};

CliResult RunTool(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"skipnode_train"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());

  const std::string path = ::testing::TempDir() + "/cli_output.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  EXPECT_NE(out, nullptr);
  const int code =
      RunCli(static_cast<int>(argv.size()), argv.data(), out);
  std::fclose(out);

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  return {code, contents.str()};
}

TEST(CliTest, HelpPrintsUsageAndFails) {
  const CliResult result = RunTool({"--help"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("--strategy"), std::string::npos);
}

TEST(CliTest, RejectsUnknownFlag) {
  const CliResult result = RunTool({"--bogus", "1"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("unknown flag"), std::string::npos);
}

TEST(CliTest, RejectsMissingDataSource) {
  const CliResult result = RunTool({"--model", "GCN"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("--dataset"), std::string::npos);
}

TEST(CliTest, RejectsUnknownDatasetModelAndStrategy) {
  EXPECT_EQ(RunTool({"--dataset", "nope"}).exit_code, 1);
  EXPECT_EQ(RunTool({"--dataset", "cornell_like", "--model", "nope"}).exit_code,
            1);
  EXPECT_EQ(RunTool({"--dataset", "cornell_like", "--strategy", "nope"})
                .exit_code,
            1);
}

TEST(CliTest, TrainsOnBuiltInDataset) {
  const CliResult result =
      RunTool({"--dataset", "cornell_like", "--model", "GCN", "--layers", "2",
           "--hidden", "16", "--epochs", "15", "--strategy", "skipnode-u",
           "--rate", "0.5", "--split", "random", "--seed", "3"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("test accuracy"), std::string::npos);
  EXPECT_NE(result.output.find("SkipNode-U"), std::string::npos);
  EXPECT_NE(result.output.find("penultimate MAD"), std::string::npos);
}

TEST(CliTest, TrainsOnUserFilesAndSavesCheckpoint) {
  // Export a graph to files, then train from them via the CLI.
  const std::string dir = ::testing::TempDir();
  Graph graph = BuildDatasetByName("texas_like", 1.0, 9);
  ASSERT_TRUE(SaveEdgeList(dir + "/cli_edges.txt", graph.edges()));
  ASSERT_TRUE(SaveMatrixCsv(dir + "/cli_feats.csv", graph.features()));
  ASSERT_TRUE(SaveLabels(dir + "/cli_labels.txt", graph.labels()));

  const CliResult result =
      RunTool({"--edges", dir + "/cli_edges.txt", "--features",
           dir + "/cli_feats.csv", "--labels", dir + "/cli_labels.txt",
           "--model", "APPNP", "--layers", "4", "--hidden", "16",
           "--epochs", "10", "--split", "random", "--save-dir", dir});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("checkpoint saved"), std::string::npos);
  // A parameter file from the APPNP model exists.
  std::ifstream manifest(dir + "/manifest.txt");
  EXPECT_TRUE(manifest.good());
}

TEST(CliTest, MetricsOutWritesEpochAndSummaryRecords) {
  const std::string path = ::testing::TempDir() + "/cli_metrics.jsonl";
  std::remove(path.c_str());
  const CliResult result =
      RunTool({"--dataset", "cornell_like", "--model", "GCN", "--layers", "2",
           "--hidden", "16", "--epochs", "6", "--split", "random",
           "--metrics-out", path});
  EXPECT_EQ(result.exit_code, 0) << result.output;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  // One record per epoch run plus the trailing summary (early stopping may
  // end the run before the epoch budget).
  ASSERT_GE(lines.size(), 2u);
  ASSERT_LE(lines.size(), 7u);
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"type\":\"epoch\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"forward_ns\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"backward_ns\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"step_ns\":"), std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"telemetry\":{"), std::string::npos);
  EXPECT_NE(lines.back().find("tensor.gemm"), std::string::npos);
}

TEST(CliTest, TrainsOnStreamingDatasetWithSizeSuffix) {
  const CliResult result =
      RunTool({"--dataset", "synth@2k", "--model", "GCN", "--layers", "2",
               "--hidden", "8", "--epochs", "5", "--split", "random",
               "--seed", "3"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("test accuracy"), std::string::npos);
}

TEST(CliTest, NodesAndAvgDegreeOverridesStreamClassicSpecs) {
  const CliResult result =
      RunTool({"--dataset", "cora_like", "--nodes", "2000", "--avg-degree",
               "6", "--model", "GCN", "--layers", "2", "--hidden", "8",
               "--epochs", "5", "--split", "random"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("2000 nodes"), std::string::npos);
}

TEST(CliTest, RejectsBadSizeSuffixAndNegativeOverrides) {
  const CliResult bad_suffix = RunTool({"--dataset", "synth@10q"});
  EXPECT_EQ(bad_suffix.exit_code, 1);
  EXPECT_NE(bad_suffix.output.find("size suffix"), std::string::npos);
  EXPECT_EQ(RunTool({"--dataset", "synth", "--nodes", "-5"}).exit_code, 1);
  EXPECT_EQ(RunTool({"--dataset", "synth", "--avg-degree", "-1"}).exit_code,
            1);
}

TEST(CliTest, RejectsBadScaleAndLayers) {
  EXPECT_EQ(RunTool({"--dataset", "cornell_like", "--scale", "0"}).exit_code, 1);
  EXPECT_EQ(RunTool({"--dataset", "cornell_like", "--layers", "1", "--epochs",
                 "1"})
                .exit_code,
            1);
}

}  // namespace
}  // namespace skipnode
