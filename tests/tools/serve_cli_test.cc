// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/serve_cli.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tools/cli.h"

namespace skipnode {
namespace {

struct CliResult {
  int exit_code;
  std::string output;
};

CliResult RunTool(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"skipnode_serve"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());

  const std::string path = ::testing::TempDir() + "/serve_cli_output.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  EXPECT_NE(out, nullptr);
  const int code =
      RunServeCli(static_cast<int>(argv.size()), argv.data(), out);
  std::fclose(out);

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  return {code, contents.str()};
}

TEST(ServeCliTest, HelpPrintsUsageAndFails) {
  const CliResult result = RunTool({"--help"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("--window-us"), std::string::npos);
}

TEST(ServeCliTest, RejectsUnknownFlagAndModel) {
  EXPECT_EQ(RunTool({"--bogus", "1"}).exit_code, 1);
  const CliResult result = RunTool({"--model", "NotANet"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("unknown model"), std::string::npos);
}

TEST(ServeCliTest, TrainFreezeServeVerifiesBitwise) {
  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--model", "SGC", "--epochs", "3",
       "--clients", "3", "--requests", "8", "--window-us", "300"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("linear-head path"), std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

TEST(ServeCliTest, ServesFromTrainCliCheckpoint) {
  // End-to-end interop: skipnode_train --save-dir, then skipnode_serve
  // --load-dir with a matching architecture.
  const std::string dir = ::testing::TempDir() + "/serve_cli_ckpt";
  std::vector<const char*> train_argv = {
      "skipnode_train", "--dataset", "cornell_like", "--model", "GCN",
      "--layers",       "3",         "--epochs",     "3",       "--save-dir",
      dir.c_str()};
  const std::string train_out_path =
      ::testing::TempDir() + "/serve_cli_train_output.txt";
  std::FILE* train_out = std::fopen(train_out_path.c_str(), "w");
  ASSERT_NE(train_out, nullptr);
  const int train_code = RunCli(static_cast<int>(train_argv.size()),
                                train_argv.data(), train_out);
  std::fclose(train_out);
  ASSERT_EQ(train_code, 0);

  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--model", "GCN", "--layers", "3",
       "--load-dir", dir, "--clients", "2", "--requests", "4"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("from checkpoint"), std::string::npos);
  EXPECT_NE(result.output.find("logit-gather path"), std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

TEST(ServeCliTest, RejectsUnknownPolicyAndFaultSite) {
  CliResult result = RunTool({"--policy", "drop-everything"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("unknown policy"), std::string::npos);
  result = RunTool({"--inject", "gradient"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("unknown serve fault site"), std::string::npos);
}

TEST(ServeCliTest, BurstTrafficUnderShedPolicyReportsStatusLine) {
  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--scale", "0.5", "--model", "SGC",
       "--epochs", "3", "--clients", "4", "--requests", "8", "--burst",
       "--queue-cap", "4", "--policy", "shed-newest", "--workers", "1",
       "--window-us", "0"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("policy shed-newest"), std::string::npos);
  EXPECT_NE(result.output.find("status: ok"), std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

TEST(ServeCliTest, StallInjectionWithDeadlinesExpiresRequests) {
  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--scale", "0.5", "--model", "SGC",
       "--epochs", "3", "--clients", "2", "--requests", "6", "--workers", "1",
       "--window-us", "0", "--inject", "serve-worker-stall", "--inject-batch",
       "0", "--inject-stall-us", "50000", "--deadline-us", "5000"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("fault fired: serve-worker-stall at batch 0"),
            std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

// Trains two checkpoints of the same architecture with different seeds,
// serves from the first, and hot-swaps to the second mid-traffic. Every ok
// response must bitwise match one of the two snapshots.
TEST(ServeCliTest, HotSwapFromCheckpointMidTraffic) {
  const std::string dir_a = ::testing::TempDir() + "/serve_cli_swap_a";
  const std::string dir_b = ::testing::TempDir() + "/serve_cli_swap_b";
  const std::string train_out_path =
      ::testing::TempDir() + "/serve_cli_swap_train.txt";
  for (const auto& [dir, seed] :
       {std::make_pair(dir_a, "1"), std::make_pair(dir_b, "9")}) {
    std::vector<const char*> train_argv = {
        "skipnode_train", "--dataset", "cornell_like", "--model",   "GCN",
        "--layers",       "3",         "--epochs",     "3",         "--seed",
        seed,             "--save-dir", dir.c_str()};
    std::FILE* train_out = std::fopen(train_out_path.c_str(), "w");
    ASSERT_NE(train_out, nullptr);
    const int train_code = RunCli(static_cast<int>(train_argv.size()),
                                  train_argv.data(), train_out);
    std::fclose(train_out);
    ASSERT_EQ(train_code, 0);
  }

  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--model", "GCN", "--layers", "3",
       "--load-dir", dir_a, "--swap-dir", dir_b, "--clients", "3",
       "--requests", "32", "--window-us", "200"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("hot-swap: now serving checkpoint"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("swaps 1"), std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

TEST(ServeCliTest, HotSwapRejectsCorruptCandidateWithoutDowntime) {
  const std::string good = ::testing::TempDir() + "/serve_cli_swap_good";
  std::vector<const char*> train_argv = {
      "skipnode_train", "--dataset", "cornell_like", "--model", "GCN",
      "--layers",       "3",         "--epochs",     "3",       "--save-dir",
      good.c_str()};
  const std::string train_out_path =
      ::testing::TempDir() + "/serve_cli_swap_good_train.txt";
  std::FILE* train_out = std::fopen(train_out_path.c_str(), "w");
  ASSERT_NE(train_out, nullptr);
  ASSERT_EQ(RunCli(static_cast<int>(train_argv.size()), train_argv.data(),
                   train_out),
            0);
  std::fclose(train_out);

  // The candidate directory holds garbage instead of a checkpoint.
  const std::string corrupt = ::testing::TempDir() + "/serve_cli_swap_corrupt";
  std::remove((corrupt + "/manifest.txt").c_str());
  std::ignore = std::system(("mkdir -p " + corrupt).c_str());
  {
    std::ofstream manifest(corrupt + "/manifest.txt");
    manifest << "not a checkpoint\n";
  }

  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--model", "GCN", "--layers", "3",
       "--load-dir", good, "--swap-dir", corrupt, "--clients", "2",
       "--requests", "8"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("hot-swap rejected:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

}  // namespace
}  // namespace skipnode
