// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/serve_cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/cli.h"

namespace skipnode {
namespace {

struct CliResult {
  int exit_code;
  std::string output;
};

CliResult RunTool(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"skipnode_serve"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());

  const std::string path = ::testing::TempDir() + "/serve_cli_output.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  EXPECT_NE(out, nullptr);
  const int code =
      RunServeCli(static_cast<int>(argv.size()), argv.data(), out);
  std::fclose(out);

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  return {code, contents.str()};
}

TEST(ServeCliTest, HelpPrintsUsageAndFails) {
  const CliResult result = RunTool({"--help"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("--window-us"), std::string::npos);
}

TEST(ServeCliTest, RejectsUnknownFlagAndModel) {
  EXPECT_EQ(RunTool({"--bogus", "1"}).exit_code, 1);
  const CliResult result = RunTool({"--model", "NotANet"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("unknown model"), std::string::npos);
}

TEST(ServeCliTest, TrainFreezeServeVerifiesBitwise) {
  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--model", "SGC", "--epochs", "3",
       "--clients", "3", "--requests", "8", "--window-us", "300"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("linear-head path"), std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

TEST(ServeCliTest, ServesFromTrainCliCheckpoint) {
  // End-to-end interop: skipnode_train --save-dir, then skipnode_serve
  // --load-dir with a matching architecture.
  const std::string dir = ::testing::TempDir() + "/serve_cli_ckpt";
  std::vector<const char*> train_argv = {
      "skipnode_train", "--dataset", "cornell_like", "--model", "GCN",
      "--layers",       "3",         "--epochs",     "3",       "--save-dir",
      dir.c_str()};
  const std::string train_out_path =
      ::testing::TempDir() + "/serve_cli_train_output.txt";
  std::FILE* train_out = std::fopen(train_out_path.c_str(), "w");
  ASSERT_NE(train_out, nullptr);
  const int train_code = RunCli(static_cast<int>(train_argv.size()),
                                train_argv.data(), train_out);
  std::fclose(train_out);
  ASSERT_EQ(train_code, 0);

  const CliResult result = RunTool(
      {"--dataset", "cornell_like", "--model", "GCN", "--layers", "3",
       "--load-dir", dir, "--clients", "2", "--requests", "4"});
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("from checkpoint"), std::string::npos);
  EXPECT_NE(result.output.find("logit-gather path"), std::string::npos);
  EXPECT_NE(result.output.find("verification OK"), std::string::npos);
}

}  // namespace
}  // namespace skipnode
