// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Edge cases and stress tests for the autograd engine beyond the basic and
// grad-check suites: extreme masks, aliased inputs, duplicate gathers, deep
// chains, and interactions that only show up in composed graphs.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/tape.h"
#include "tensor/ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

TEST(TapeEdgeTest, RowSelectAllSkippedIsSkipPath) {
  Tape tape;
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {9, 9, 9, 9});
  Var out = tape.RowSelect({1, 1}, tape.Constant(a), tape.Constant(b));
  EXPECT_LT(MaxAbsDiff(out.value(), a), 1e-7f);
}

TEST(TapeEdgeTest, RowSelectNoneSkippedIsConvPath) {
  Tape tape;
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {9, 9, 9, 9});
  Var out = tape.RowSelect({0, 0}, tape.Constant(a), tape.Constant(b));
  EXPECT_LT(MaxAbsDiff(out.value(), b), 1e-7f);
}

TEST(TapeEdgeTest, RowSelectGradientsRouteExclusively) {
  Parameter skipped("s", Matrix::Ones(3, 2));
  Parameter convolved("c", Matrix::Ones(3, 2));
  Tape tape;
  Var out = tape.RowSelect({1, 0, 1}, tape.Leaf(skipped),
                           tape.Leaf(convolved));
  Var loss = tape.MseLoss(out, tape.Constant(Matrix(3, 2)));
  skipped.ZeroGrad();
  convolved.ZeroGrad();
  tape.Backward(loss);
  // Rows 0 and 2 flow to `skipped`, row 1 to `convolved`; never both.
  for (int r = 0; r < 3; ++r) {
    const bool skip_row = r != 1;
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(skipped.grad.at(r, c) != 0.0f, skip_row);
      EXPECT_EQ(convolved.grad.at(r, c) != 0.0f, !skip_row);
    }
  }
}

TEST(TapeEdgeTest, AxpbyWithAliasedInputs) {
  // out = 0.5 a + 0.5 a = a; grad should accumulate both halves.
  Parameter a("a", Matrix(1, 1, {3.0f}));
  Tape tape;
  Var leaf = tape.Leaf(a);
  Var out = tape.Axpby(leaf, leaf, 0.5f, 0.5f);
  Var loss = tape.MseLoss(out, tape.Constant(Matrix(1, 1)));
  a.ZeroGrad();
  tape.Backward(loss);
  EXPECT_NEAR(a.grad.at(0, 0), 2.0f * 3.0f, 1e-5f);
}

TEST(TapeEdgeTest, GatherRowsWithDuplicatesAccumulates) {
  Parameter x("x", Matrix(2, 1, {1.0f, 2.0f}));
  Tape tape;
  // Row 0 gathered three times: its gradient is 3x a single gather.
  Var g = tape.GatherRows(tape.Leaf(x), {0, 0, 0});
  Var loss = tape.MseLoss(g, tape.Constant(Matrix(3, 1)));
  x.ZeroGrad();
  tape.Backward(loss);
  // d/dx0 mean((x0)^2 * 3 terms) = 3 * 2*x0/3 = 2*x0 = 2.
  EXPECT_NEAR(x.grad.at(0, 0), 2.0f, 1e-5f);
  EXPECT_EQ(x.grad.at(1, 0), 0.0f);
}

TEST(TapeEdgeTest, ConcatSingleInputIsCopy) {
  Tape tape;
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Var out = tape.ConcatCols({tape.Constant(m)});
  EXPECT_LT(MaxAbsDiff(out.value(), m), 1e-7f);
}

TEST(TapeEdgeTest, DeepChainGradientIsExact) {
  // y = 0.9^K * w summed; analytic gradient through a 100-op chain.
  Parameter w("w", Matrix(1, 1, {1.0f}));
  Tape tape;
  Var x = tape.Leaf(w);
  const int kDepth = 100;
  for (int i = 0; i < kDepth; ++i) x = tape.Scale(x, 0.9f);
  Var loss = tape.MseLoss(x, tape.Constant(Matrix(1, 1)));
  w.ZeroGrad();
  tape.Backward(loss);
  const double factor = std::pow(0.9, kDepth);
  // d/dw (factor*w)^2 = 2 * factor^2 * w.
  EXPECT_NEAR(w.grad.at(0, 0), 2.0 * factor * factor, 1e-9);
}

TEST(TapeEdgeTest, DeepReluChainKeepsGradientForPositivePath) {
  Parameter w("w", Matrix(1, 1, {2.0f}));
  Tape tape;
  Var x = tape.Leaf(w);
  for (int i = 0; i < 50; ++i) x = tape.Relu(x);
  Var loss = tape.MseLoss(x, tape.Constant(Matrix(1, 1)));
  w.ZeroGrad();
  tape.Backward(loss);
  EXPECT_NEAR(w.grad.at(0, 0), 2.0f * 2.0f, 1e-5f);  // d/dw w^2.
}

TEST(TapeEdgeTest, PairNormOfConstantRowsIsFinite) {
  // All-identical rows center to exactly zero; the epsilon clamp must keep
  // outputs and gradients finite.
  Parameter x("x", Matrix::Ones(4, 3));
  Tape tape;
  Var out = tape.PairNorm(tape.Leaf(x), 1.0f);
  for (int64_t i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value().data()[i]));
  }
  Var loss = tape.MseLoss(out, tape.Constant(Matrix(4, 3)));
  x.ZeroGrad();
  tape.Backward(loss);
  for (int64_t i = 0; i < x.grad.size(); ++i) {
    EXPECT_TRUE(std::isfinite(x.grad.data()[i]));
  }
}

TEST(TapeEdgeTest, DropoutRateZeroReturnsSameNode) {
  Rng rng(1);
  Tape tape;
  Var x = tape.Constant(Matrix::Ones(2, 2));
  const int nodes_before = tape.num_nodes();
  Var out = tape.Dropout(x, 0.0f, /*training=*/true, rng);
  EXPECT_EQ(tape.num_nodes(), nodes_before);  // No new node.
  EXPECT_LT(MaxAbsDiff(out.value(), x.value()), 1e-7f);
}

TEST(TapeEdgeTest, ScalarChainOfLossesComposes) {
  // loss = mse(a, 0) + 0.5 * mse(a, 2): both branches contribute gradient.
  Parameter a("a", Matrix(1, 1, {1.0f}));
  Tape tape;
  Var leaf = tape.Leaf(a);
  Var l1 = tape.MseLoss(leaf, tape.Constant(Matrix(1, 1)));
  Matrix two(1, 1, {2.0f});
  Var l2 = tape.MseLoss(leaf, tape.Constant(two));
  Var loss = tape.Axpby(l1, l2, 1.0f, 0.5f);
  a.ZeroGrad();
  tape.Backward(loss);
  // d/da [a^2 + 0.5 (a-2)^2] = 2a + (a-2) = 1.
  EXPECT_NEAR(a.grad.at(0, 0), 1.0f, 1e-5f);
}

TEST(TapeEdgeTest, SpMMThroughEmptyRowsGivesZeroGradThere) {
  // Adjacency with an all-zero column: gradients to that input row are 0.
  auto sparse = std::make_shared<CsrMatrix>(
      testing::CsrFromCoo(2, 2, {{0, 0}, {1, 0}}, {1.0f, 1.0f}));
  Parameter x("x", Matrix::Ones(2, 2));
  Tape tape;
  Var out = tape.SpMM(sparse, tape.Leaf(x));
  Var loss = tape.MseLoss(out, tape.Constant(Matrix(2, 2)));
  x.ZeroGrad();
  tape.Backward(loss);
  EXPECT_NE(x.grad.at(0, 0), 0.0f);
  EXPECT_EQ(x.grad.at(1, 0), 0.0f);  // Column 1 of A is empty.
}

TEST(TapeEdgeTest, GatAggregateAttentionIsRowStochastic) {
  // With h = all-ones, out_i = sum_j alpha_ij * 1 = 1 exactly, because the
  // attention weights of each row form a softmax.
  auto pattern = std::make_shared<CsrMatrix>(testing::CsrFromCoo(
      3, 3, {{0, 0}, {0, 1}, {1, 1}, {2, 0}, {2, 2}},
      std::vector<float>(5, 1.0f)));
  Rng rng(1);
  Tape tape;
  Var h = tape.Constant(Matrix::Ones(3, 4));
  Var src = tape.Constant(Matrix::Random(3, 1, rng));
  Var dst = tape.Constant(Matrix::Random(3, 1, rng));
  Var out = tape.GatAggregate(pattern, h, src, dst);
  EXPECT_LT(MaxAbsDiff(out.value(), Matrix::Ones(3, 4)), 1e-5f);
}

TEST(TapeEdgeTest, GatAggregateSingleNeighborIsCopy) {
  // A row with exactly one pattern entry gets that neighbour's h verbatim
  // (softmax over one element is 1).
  auto pattern = std::make_shared<CsrMatrix>(
      testing::CsrFromCoo(2, 2, {{0, 1}, {1, 1}}, {1.0f, 1.0f}));
  Rng rng(2);
  Matrix h_val = Matrix::Random(2, 3, rng);
  Tape tape;
  Var out = tape.GatAggregate(pattern, tape.Constant(h_val),
                              tape.Constant(Matrix::Random(2, 1, rng)),
                              tape.Constant(Matrix::Random(2, 1, rng)));
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(out.value()(0, c), h_val(1, c), 1e-5f);
    EXPECT_NEAR(out.value()(1, c), h_val(1, c), 1e-5f);
  }
}

TEST(TapeEdgeTest, GatAggregateEmptyRowIsZero) {
  // Nodes with no pattern entries (DropNode-style isolation) output zeros.
  auto pattern = std::make_shared<CsrMatrix>(
      testing::CsrFromCoo(2, 2, {{0, 0}}, {1.0f}));
  Rng rng(3);
  Tape tape;
  Var out = tape.GatAggregate(pattern, tape.Constant(Matrix::Ones(2, 3)),
                              tape.Constant(Matrix(2, 1)),
                              tape.Constant(Matrix(2, 1)));
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(out.value()(1, c), 0.0f);
    EXPECT_NEAR(out.value()(0, c), 1.0f, 1e-6f);
  }
}

}  // namespace
}  // namespace skipnode
