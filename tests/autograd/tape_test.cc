// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "autograd/tape.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

TEST(TapeTest, ConstantHoldsValue) {
  Tape tape;
  Var c = tape.Constant(Matrix(1, 2, {3, 4}));
  EXPECT_FLOAT_EQ(c.value().at(0, 1), 4.0f);
  EXPECT_EQ(c.rows(), 1);
  EXPECT_EQ(c.cols(), 2);
}

TEST(TapeTest, LeafReflectsParameterValue) {
  Rng rng(1);
  Parameter w("w", Matrix::Random(2, 2, rng));
  Tape tape;
  Var leaf = tape.Leaf(w);
  EXPECT_LT(MaxAbsDiff(leaf.value(), w.value), 1e-7f);
}

TEST(TapeTest, BackwardThroughScaleIsExact) {
  // loss = mse(2 * w, 0) = mean(4 w^2); dloss/dw = 8 w / size.
  Parameter w("w", Matrix(1, 2, {1.0f, -3.0f}));
  Tape tape;
  Var out = tape.Scale(tape.Leaf(w), 2.0f);
  Var loss = tape.MseLoss(out, tape.Constant(Matrix(1, 2)));
  EXPECT_FLOAT_EQ(loss.value()(0, 0), (4.0f + 36.0f) / 2.0f);
  w.ZeroGrad();
  tape.Backward(loss);
  EXPECT_NEAR(w.grad.at(0, 0), 8.0f * 1.0f / 2.0f, 1e-5f);
  EXPECT_NEAR(w.grad.at(0, 1), 8.0f * -3.0f / 2.0f, 1e-5f);
}

TEST(TapeTest, GradientAccumulatesWhenVarReused) {
  // loss = mse(w + w, 0): gradient doubles relative to a single use.
  Parameter w("w", Matrix(1, 1, {2.0f}));
  Tape tape;
  Var leaf = tape.Leaf(w);
  Var doubled = tape.Add(leaf, leaf);
  Var loss = tape.MseLoss(doubled, tape.Constant(Matrix(1, 1)));
  w.ZeroGrad();
  tape.Backward(loss);
  // d/dw (2w)^2 = 8w = 16.
  EXPECT_NEAR(w.grad.at(0, 0), 16.0f, 1e-5f);
}

TEST(TapeTest, GradAccumulatesAcrossTapes) {
  Parameter w("w", Matrix(1, 1, {1.0f}));
  w.ZeroGrad();
  for (int i = 0; i < 3; ++i) {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(w), tape.Constant(Matrix(1, 1)));
    tape.Backward(loss);
  }
  // Each pass adds 2w = 2.
  EXPECT_NEAR(w.grad.at(0, 0), 6.0f, 1e-5f);
}

TEST(TapeTest, UnusedBranchGetsZeroGrad) {
  Parameter used("used", Matrix(1, 1, {1.0f}));
  Parameter unused("unused", Matrix(1, 1, {1.0f}));
  Tape tape;
  Var a = tape.Leaf(used);
  tape.Leaf(unused);  // On tape, not connected to the loss.
  Var loss = tape.MseLoss(a, tape.Constant(Matrix(1, 1)));
  used.ZeroGrad();
  unused.ZeroGrad();
  tape.Backward(loss);
  EXPECT_NE(used.grad.at(0, 0), 0.0f);
  EXPECT_EQ(unused.grad.at(0, 0), 0.0f);
}

TEST(TapeTest, MatMulChainMatchesManualDerivative) {
  // loss = mse(x W, y). dL/dW = 2/size * x^T (xW - y).
  Rng rng(2);
  Matrix x_val = Matrix::Random(4, 3, rng);
  Matrix y_val = Matrix::Random(4, 2, rng);
  Parameter w("w", Matrix::Random(3, 2, rng));

  Tape tape;
  Var out = tape.MatMul(tape.Constant(x_val), tape.Leaf(w));
  Var loss = tape.MseLoss(out, tape.Constant(y_val));
  w.ZeroGrad();
  tape.Backward(loss);

  Matrix residual = Sub(MatMul(x_val, w.value), y_val);
  Matrix expected = Scale(MatMulTransposeA(x_val, residual),
                          2.0f / static_cast<float>(residual.size()));
  EXPECT_LT(MaxAbsDiff(w.grad, expected), 1e-4f);
}

TEST(TapeTest, DropoutEvalModeIsIdentity) {
  Rng rng(3);
  Tape tape;
  Matrix x = Matrix::Random(5, 5, rng);
  Var v = tape.Constant(x);
  Var out = tape.Dropout(v, 0.5f, /*training=*/false, rng);
  EXPECT_LT(MaxAbsDiff(out.value(), x), 1e-7f);
}

TEST(TapeTest, DropoutTrainingZeroesAndRescales) {
  Rng rng(4);
  Tape tape;
  Matrix x = Matrix::Ones(100, 100);
  Var out = tape.Dropout(tape.Constant(x), 0.4f, /*training=*/true, rng);
  int zeros = 0;
  double total = 0.0;
  for (int64_t i = 0; i < out.value().size(); ++i) {
    const float v = out.value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    }
    total += v;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.4, 0.03);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(total / 10000.0, 1.0, 0.05);
}

TEST(TapeTest, RowSelectTakesMaskedRowsFromSkipPath) {
  Tape tape;
  Var skipped = tape.Constant(Matrix(3, 2, {1, 1, 2, 2, 3, 3}));
  Var convolved = tape.Constant(Matrix(3, 2, {9, 9, 8, 8, 7, 7}));
  Var out = tape.RowSelect({1, 0, 1}, skipped, convolved);
  EXPECT_LT(MaxAbsDiff(out.value(), Matrix(3, 2, {1, 1, 8, 8, 3, 3})),
            1e-7f);
}

TEST(TapeTest, SpmmMatchesDense) {
  Rng rng(5);
  auto sparse = std::make_shared<CsrMatrix>(
      testing::CsrFromCoo(3, 3, {{0, 1}, {1, 0}, {2, 2}}, {2, 2, 1}));
  Matrix x = Matrix::Random(3, 4, rng);
  Tape tape;
  Var out = tape.SpMM(sparse, tape.Constant(x));
  EXPECT_LT(MaxAbsDiff(out.value(), MatMul(sparse->ToDense(), x)), 1e-5f);
}

TEST(TapeTest, SoftmaxCrossEntropyOfUniformLogitsIsLogC) {
  Tape tape;
  Var logits = tape.Constant(Matrix(4, 5));  // All-zero logits.
  const std::vector<int> labels = {0, 1, 2, 3};
  Var loss = tape.SoftmaxCrossEntropy(logits, labels, {0, 1, 2, 3});
  EXPECT_NEAR(loss.value()(0, 0), std::log(5.0f), 1e-5f);
}

TEST(TapeTest, BceWithLogitsAtZeroIsLogTwo) {
  Tape tape;
  Var logits = tape.Constant(Matrix(3, 1));
  Var loss = tape.BceWithLogits(logits, {1.0f, 0.0f, 1.0f});
  EXPECT_NEAR(loss.value()(0, 0), std::log(2.0f), 1e-5f);
}

TEST(TapeTest, LinearCombinationValue) {
  Tape tape;
  Parameter coeff("c", Matrix(1, 2, {0.25f, 0.75f}));
  Var a = tape.Constant(Matrix(1, 1, {4.0f}));
  Var b = tape.Constant(Matrix(1, 1, {8.0f}));
  Var out = tape.LinearCombination({a, b}, tape.Leaf(coeff));
  EXPECT_NEAR(out.value()(0, 0), 7.0f, 1e-6f);
}

}  // namespace
}  // namespace skipnode
