// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "autograd/health.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/tape.h"
#include "tensor/matrix.h"

namespace skipnode {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(HealthTest, ProbeReportsTheExactGlobalNorm) {
  Parameter w("w", Matrix(2, 2));
  Parameter b("b", Matrix(1, 2));
  w.grad(0, 0) = 3.0f;
  b.grad(0, 1) = 4.0f;
  const GradientHealth health = ProbeGradients({&w, &b});
  EXPECT_TRUE(health.finite);
  EXPECT_TRUE(health.first_bad.empty());
  EXPECT_DOUBLE_EQ(health.global_norm, 5.0);
}

TEST(HealthTest, ProbeNamesTheFirstNonFiniteGradient) {
  Parameter w("w", Matrix(2, 2));
  Parameter b("b", Matrix(1, 2));
  b.grad(0, 0) = kNaN;
  const GradientHealth health = ProbeGradients({&w, &b});
  EXPECT_FALSE(health.finite);
  EXPECT_EQ(health.first_bad, "b");
}

TEST(HealthTest, ParametersFiniteChecksValuesNotGradients) {
  Parameter w("w", Matrix(2, 2));
  w.grad(0, 0) = kNaN;  // Poisoned grad must not trip the *value* scan.
  std::string first_bad;
  EXPECT_TRUE(ParametersFinite({&w}, &first_bad));
  EXPECT_TRUE(first_bad.empty());

  w.value(1, 1) = kInf;
  EXPECT_FALSE(ParametersFinite({&w}, &first_bad));
  EXPECT_EQ(first_bad, "w");
}

TEST(HealthTest, ScaleGradientsScalesEveryParameter) {
  Parameter w("w", Matrix(2, 2));
  Parameter b("b", Matrix(1, 2));
  w.grad(0, 0) = 8.0f;
  b.grad(0, 1) = -6.0f;
  ScaleGradients({&w, &b}, 0.5f);
  EXPECT_FLOAT_EQ(w.grad(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(b.grad(0, 1), -3.0f);
}

TEST(HealthTest, MutableValueCorruptionReachesLossAndGradients) {
  // Corrupting a forward value through Tape::MutableValue before recording
  // the loss must poison both the loss and the backward pass — this is the
  // property the trainer's kActivation fault site relies on.
  Parameter w("w", Matrix(3, 2));
  w.value(0, 0) = 0.3f;
  w.value(1, 1) = -0.2f;
  w.value(2, 0) = 0.1f;
  Matrix x(4, 3);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) x(i, j) = 0.1f * static_cast<float>(i + j);
  }
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<int> nodes = {0, 1, 2, 3};

  Tape tape;
  Var logits = tape.MatMul(tape.Constant(x), tape.Leaf(w));
  tape.MutableValue(logits)(1, 0) = kNaN;
  Var loss = tape.SoftmaxCrossEntropy(logits, labels, nodes);
  EXPECT_TRUE(std::isnan(loss.value()(0, 0)));

  w.ZeroGrad();
  tape.Backward(loss);
  EXPECT_FALSE(ProbeGradients({&w}).finite);
}

}  // namespace
}  // namespace skipnode
