// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Property tests: every differentiable op's analytic gradient matches
// central finite differences. Parameterised over ops so each op is a
// distinct case sharing one harness.

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/tape.h"
#include "tensor/ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

constexpr float kEpsilon = 1e-2f;
constexpr float kRelTolerance = 3e-2f;
constexpr float kAbsTolerance = 2e-2f;

// Builds an op output from the leaf of the parameter under test; the harness
// turns it into a scalar via MseLoss against a fixed target.
using OpBuilder = std::function<Var(Tape&, Var leaf)>;

struct OpCase {
  std::string name;
  int param_rows;
  int param_cols;
  OpBuilder build;
};

class OpGradTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradTest, AnalyticMatchesNumeric) {
  const OpCase& op_case = GetParam();
  Rng rng(1234);
  Parameter param("p", Matrix::Random(op_case.param_rows, op_case.param_cols,
                                      rng, -1.0f, 1.0f));
  // Avoid ReLU kinks and PairNorm degeneracy at exactly zero.
  for (int64_t i = 0; i < param.value.size(); ++i) {
    float& v = param.value.data()[i];
    if (std::fabs(v) < 0.05f) v = v < 0 ? -0.05f : 0.05f;
  }
  Rng target_rng(99);
  const Matrix target = [&]() {
    Tape probe;
    Var out = op_case.build(probe, probe.Leaf(param));
    return Matrix::Random(out.rows(), out.cols(), target_rng);
  }();

  const auto loss_fn = [&]() {
    Tape tape;
    Var out = op_case.build(tape, tape.Leaf(param));
    Var loss = tape.MseLoss(out, tape.Constant(target));
    return loss.value()(0, 0);
  };

  // Analytic gradient.
  {
    Tape tape;
    Var out = op_case.build(tape, tape.Leaf(param));
    Var loss = tape.MseLoss(out, tape.Constant(target));
    param.ZeroGrad();
    tape.Backward(loss);
  }

  const GradCheckResult result = CheckGradient(loss_fn, param, kEpsilon);
  EXPECT_LT(result.max_abs_error, kAbsTolerance) << op_case.name;
  EXPECT_LT(result.max_rel_error, kRelTolerance) << op_case.name;
}

std::vector<OpCase> MakeOpCases() {
  std::vector<OpCase> cases;
  Rng shared_rng(7);
  // Shared fixed operands (captured by value in the builders).
  const Matrix rhs = Matrix::Random(4, 3, shared_rng);
  const Matrix lhs = Matrix::Random(5, 3, shared_rng);
  const Matrix same_shape = Matrix::Random(3, 4, shared_rng);
  const auto sparse = std::make_shared<CsrMatrix>(testing::CsrFromCoo(
      3, 3, {{0, 0}, {0, 1}, {1, 2}, {2, 0}, {2, 2}},
      {0.5f, -1.0f, 2.0f, 1.5f, 0.25f}));

  cases.push_back({"MatMulLhs", 3, 4, [rhs](Tape& t, Var leaf) {
                     return t.MatMul(leaf, t.Constant(rhs));
                   }});
  cases.push_back({"MatMulRhs", 3, 4, [lhs](Tape& t, Var leaf) {
                     return t.MatMul(t.Constant(lhs), leaf);
                   }});
  cases.push_back({"SpMM", 3, 4, [sparse](Tape& t, Var leaf) {
                     return t.SpMM(sparse, leaf);
                   }});
  cases.push_back({"Add", 3, 4, [same_shape](Tape& t, Var leaf) {
                     return t.Add(leaf, t.Constant(same_shape));
                   }});
  cases.push_back({"Sub", 3, 4, [same_shape](Tape& t, Var leaf) {
                     return t.Sub(t.Constant(same_shape), leaf);
                   }});
  cases.push_back({"Axpby", 3, 4, [same_shape](Tape& t, Var leaf) {
                     return t.Axpby(leaf, t.Constant(same_shape), 0.3f, 1.7f);
                   }});
  cases.push_back({"Scale", 3, 4, [](Tape& t, Var leaf) {
                     return t.Scale(leaf, -2.5f);
                   }});
  cases.push_back({"Relu", 3, 4, [](Tape& t, Var leaf) {
                     return t.Relu(leaf);
                   }});
  cases.push_back({"AddRowBroadcastBias", 1, 4, [same_shape](Tape& t,
                                                             Var leaf) {
                     return t.AddRowBroadcast(t.Constant(same_shape), leaf);
                   }});
  cases.push_back({"AddRowBroadcastInput", 3, 4, [](Tape& t, Var leaf) {
                     Matrix bias(1, 4, {0.1f, -0.2f, 0.3f, -0.4f});
                     return t.AddRowBroadcast(leaf, t.Constant(bias));
                   }});
  cases.push_back({"ConcatCols", 3, 2, [same_shape](Tape& t, Var leaf) {
                     return t.ConcatCols({leaf, t.Constant(same_shape), leaf});
                   }});
  cases.push_back(
      {"LinearCombinationParts", 3, 4, [same_shape](Tape& t, Var leaf) {
         Matrix coeff(1, 2, {0.6f, -1.2f});
         return t.LinearCombination({leaf, t.Constant(same_shape)},
                                    t.Constant(coeff));
       }});
  cases.push_back(
      {"LinearCombinationCoeffs", 1, 3, [same_shape](Tape& t, Var leaf) {
         Var a = t.Constant(same_shape);
         Var b = t.Scale(a, 0.5f);
         Var c = t.Scale(a, -1.0f);
         return t.LinearCombination({a, b, c}, leaf);
       }});
  cases.push_back({"GatherRows", 4, 3, [](Tape& t, Var leaf) {
                     return t.GatherRows(leaf, {2, 0, 2, 3});
                   }});
  cases.push_back({"RowDotsLhs", 4, 3, [](Tape& t, Var leaf) {
                     Rng r(3);
                     return t.RowDots(leaf, t.Constant(Matrix::Random(4, 3, r)));
                   }});
  cases.push_back({"RowSelectSkipped", 3, 4, [same_shape](Tape& t, Var leaf) {
                     return t.RowSelect({1, 0, 1}, leaf,
                                        t.Constant(same_shape));
                   }});
  cases.push_back({"RowSelectConvolved", 3, 4,
                   [same_shape](Tape& t, Var leaf) {
                     return t.RowSelect({1, 0, 1}, t.Constant(same_shape),
                                        leaf);
                   }});
  cases.push_back({"PairNorm", 4, 3, [](Tape& t, Var leaf) {
                     return t.PairNorm(leaf, 1.5f);
                   }});
  // Attention pattern for the GatAggregate cases: a 4-node graph with self
  // loops (values irrelevant).
  const auto gat_pattern = std::make_shared<CsrMatrix>(testing::CsrFromCoo(
      4, 4,
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 3},
       {3, 0}, {0, 3}},
      std::vector<float>(10, 1.0f)));
  Rng gat_rng(21);
  const Matrix gat_h = Matrix::Random(4, 3, gat_rng);
  const Matrix gat_src = Matrix::Random(4, 1, gat_rng);
  const Matrix gat_dst = Matrix::Random(4, 1, gat_rng);
  cases.push_back({"GatAggregateH", 4, 3,
                   [gat_pattern, gat_src, gat_dst](Tape& t, Var leaf) {
                     return t.GatAggregate(gat_pattern, leaf,
                                           t.Constant(gat_src),
                                           t.Constant(gat_dst));
                   }});
  cases.push_back({"GatAggregateSrc", 4, 1,
                   [gat_pattern, gat_h, gat_dst](Tape& t, Var leaf) {
                     return t.GatAggregate(gat_pattern, t.Constant(gat_h),
                                           leaf, t.Constant(gat_dst));
                   }});
  cases.push_back({"GatAggregateDst", 4, 1,
                   [gat_pattern, gat_h, gat_src](Tape& t, Var leaf) {
                     return t.GatAggregate(gat_pattern, t.Constant(gat_h),
                                           t.Constant(gat_src), leaf);
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradTest,
                         ::testing::ValuesIn(MakeOpCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

// Loss ops produce the scalar directly; separate harness.

TEST(LossGradTest, SoftmaxCrossEntropy) {
  Rng rng(11);
  Parameter logits("logits", Matrix::Random(5, 3, rng, -1.0f, 1.0f));
  const std::vector<int> labels = {0, 2, 1, 1, 0};
  const std::vector<int> nodes = {0, 1, 3, 4};

  const auto loss_fn = [&]() {
    Tape tape;
    return tape.SoftmaxCrossEntropy(tape.Leaf(logits), labels, nodes)
        .value()(0, 0);
  };
  {
    Tape tape;
    Var loss = tape.SoftmaxCrossEntropy(tape.Leaf(logits), labels, nodes);
    logits.ZeroGrad();
    tape.Backward(loss);
  }
  const GradCheckResult result = CheckGradient(loss_fn, logits, kEpsilon);
  EXPECT_LT(result.max_abs_error, kAbsTolerance);
  EXPECT_LT(result.max_rel_error, kRelTolerance);
}

TEST(LossGradTest, BceWithLogits) {
  Rng rng(12);
  Parameter logits("logits", Matrix::Random(6, 1, rng, -2.0f, 2.0f));
  const std::vector<float> targets = {1, 0, 1, 1, 0, 0};

  const auto loss_fn = [&]() {
    Tape tape;
    return tape.BceWithLogits(tape.Leaf(logits), targets).value()(0, 0);
  };
  {
    Tape tape;
    Var loss = tape.BceWithLogits(tape.Leaf(logits), targets);
    logits.ZeroGrad();
    tape.Backward(loss);
  }
  const GradCheckResult result = CheckGradient(loss_fn, logits, kEpsilon);
  EXPECT_LT(result.max_abs_error, kAbsTolerance);
  EXPECT_LT(result.max_rel_error, kRelTolerance);
}

TEST(LossGradTest, MseBothSides) {
  Rng rng(13);
  Parameter a("a", Matrix::Random(3, 3, rng));
  Matrix b_val = Matrix::Random(3, 3, rng);

  const auto loss_fn = [&]() {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(a), tape.Constant(b_val));
    return loss.value()(0, 0);
  };
  {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(a), tape.Constant(b_val));
    a.ZeroGrad();
    tape.Backward(loss);
  }
  const GradCheckResult result = CheckGradient(loss_fn, a, kEpsilon);
  EXPECT_LT(result.max_rel_error, kRelTolerance);
}

// Dropout cannot be finite-difference checked (stochastic), but its backward
// mask must match its forward mask: zeroed outputs receive zero gradient and
// kept outputs receive the scaled gradient.
TEST(LossGradTest, DropoutBackwardUsesForwardMask) {
  Rng rng(14);
  Parameter x("x", Matrix::Ones(8, 8));
  Tape tape;
  Var leaf = tape.Leaf(x);
  Var dropped = tape.Dropout(leaf, 0.5f, /*training=*/true, rng);
  Var loss = tape.MseLoss(dropped, tape.Constant(Matrix(8, 8)));
  x.ZeroGrad();
  tape.Backward(loss);
  for (int64_t i = 0; i < x.value.size(); ++i) {
    const float out = dropped.value().data()[i];
    const float grad = x.grad.data()[i];
    if (out == 0.0f) {
      EXPECT_EQ(grad, 0.0f);
    } else {
      EXPECT_NE(grad, 0.0f);
    }
  }
}

}  // namespace
}  // namespace skipnode
