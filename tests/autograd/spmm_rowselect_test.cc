// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The fused SkipNode propagation op (DESIGN §10). Two contracts:
//   1. Gradients are exact: analytic vs central differences, w.r.t. both the
//      convolved input x and the skipped passthrough pre.
//   2. Fused == naive, bitwise: SpMMRowSelect(a, x, pre, mask) must produce
//      the same forward values and the same accumulated parameter gradients
//      as RowSelect(mask, pre, SpMM(a, x)) at every thread count, every rho,
//      and for both mask samplers — with the workspace pool on or off.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/tape.h"
#include "base/parallel.h"
#include "core/skipnode.h"
#include "sparse/csr_matrix.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

constexpr float kEpsilon = 1e-2f;
constexpr float kRelTolerance = 3e-2f;
constexpr float kAbsTolerance = 2e-2f;

std::shared_ptr<const CsrMatrix> SmallAdjacency() {
  return std::make_shared<const CsrMatrix>(testing::CsrFromCoo(
      4, 4,
      {{0, 0}, {0, 1}, {1, 1}, {1, 3}, {2, 0}, {2, 2}, {3, 2}, {3, 3}},
      {0.5f, -1.0f, 2.0f, 1.5f, 0.25f, -0.75f, 1.0f, 0.5f}));
}

// A mask that exercises both branches: rows 1 and 3 skip, rows 0 and 2
// convolve.
const std::vector<uint8_t> kMixedMask = {0, 1, 0, 1};

void RunGradCheck(bool check_x) {
  Rng rng(1234);
  Parameter param("p", Matrix::Random(4, 3, rng, -1.0f, 1.0f));
  const Matrix fixed = Matrix::Random(4, 3, rng, -1.0f, 1.0f);
  Rng target_rng(99);
  const Matrix target = Matrix::Random(4, 3, target_rng);
  auto adjacency = SmallAdjacency();

  const auto forward = [&](Tape& tape) {
    Var leaf = tape.Leaf(param);
    Var other = tape.Constant(fixed);
    Var x = check_x ? leaf : other;
    Var pre = check_x ? other : leaf;
    Var out = tape.SpMMRowSelect(adjacency, x, pre, kMixedMask);
    return tape.MseLoss(out, tape.Constant(target));
  };

  const auto loss_fn = [&]() {
    Tape tape;
    return forward(tape).value()(0, 0);
  };
  {
    Tape tape;
    Var loss = forward(tape);
    param.ZeroGrad();
    tape.Backward(loss);
  }
  const GradCheckResult result = CheckGradient(loss_fn, param, kEpsilon);
  EXPECT_LT(result.max_abs_error, kAbsTolerance);
  EXPECT_LT(result.max_rel_error, kRelTolerance);
}

TEST(SpMMRowSelectGradTest, GradientWrtConvolvedInputMatchesNumeric) {
  RunGradCheck(/*check_x=*/true);
}

TEST(SpMMRowSelectGradTest, GradientWrtSkippedPassthroughMatchesNumeric) {
  RunGradCheck(/*check_x=*/false);
}

// --- Bitwise fused-vs-naive equivalence -------------------------------------

struct BitwiseCase {
  const char* name;
  float rho;
  bool biased;
};

class FusedBitwiseTest : public ::testing::TestWithParam<BitwiseCase> {};

// A mid-sized random graph so several ParallelFor shards are in play.
std::shared_ptr<const CsrMatrix> MediumAdjacency(int n, Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  std::vector<float> values;
  for (int i = 0; i < n; ++i) {
    coords.push_back({i, i});
    values.push_back(1.0f);
    for (int k = 0; k < 4; ++k) {
      const int j = static_cast<int>(rng.UniformInt(n));
      coords.push_back({i, j});
      values.push_back(rng.UniformFloat(-1.0f, 1.0f));
    }
  }
  return std::make_shared<const CsrMatrix>(
      testing::CsrFromCoo(n, n, coords, values));
}

std::vector<int> Degrees(int n, Rng& rng) {
  std::vector<int> degrees(n);
  for (int& d : degrees) d = 1 + static_cast<int>(rng.UniformInt(9));
  return degrees;
}

TEST_P(FusedBitwiseTest, FusedMatchesNaiveBitwise) {
  const BitwiseCase& c = GetParam();
  const int n = 64, d = 7;
  Rng graph_rng(42);
  auto adjacency = MediumAdjacency(n, graph_rng);
  const std::vector<int> degrees = Degrees(n, graph_rng);

  // Both paths must consume the identical mask; sample it once up front the
  // way StrategyContext does (biased through the cached-weights overload).
  Rng mask_rng(7);
  std::vector<uint8_t> mask;
  if (c.biased) {
    std::vector<double> weights(degrees.begin(), degrees.end());
    mask = SampleSkipMaskBiased(weights, c.rho, mask_rng);
  } else {
    mask = SampleSkipMaskUniform(n, c.rho, mask_rng);
  }

  for (const int threads : {1, 4}) {
    for (const bool pooled : {true, false}) {
      SetParallelThreadCount(threads);
      SetMatrixPoolEnabled(pooled);

      Rng data_rng(9);
      Parameter x_param("x", Matrix::Random(n, d, data_rng, -1.0f, 1.0f));
      Parameter pre_param("pre", Matrix::Random(n, d, data_rng, -1.0f, 1.0f));
      Rng target_rng(11);
      const Matrix target = Matrix::Random(n, d, target_rng);

      Matrix values[2], x_grads[2], pre_grads[2];
      for (int fused = 0; fused < 2; ++fused) {
        Tape tape;
        Var x = tape.Leaf(x_param);
        Var pre = tape.Leaf(pre_param);
        Var out = fused
                      ? tape.SpMMRowSelect(adjacency, x, pre, mask)
                      : tape.RowSelect(mask, pre, tape.SpMM(adjacency, x));
        values[fused] = out.value();
        Var loss = tape.MseLoss(out, tape.Constant(target));
        x_param.ZeroGrad();
        pre_param.ZeroGrad();
        tape.Backward(loss);
        x_grads[fused] = x_param.grad;
        pre_grads[fused] = pre_param.grad;
      }
      SetParallelThreadCount(0);
      SetMatrixPoolEnabled(true);

      // Bitwise: exact zero difference, not approximately zero.
      EXPECT_EQ(MaxAbsDiff(values[0], values[1]), 0.0f)
          << c.name << " threads=" << threads << " pooled=" << pooled;
      EXPECT_EQ(MaxAbsDiff(x_grads[0], x_grads[1]), 0.0f)
          << c.name << " threads=" << threads << " pooled=" << pooled;
      EXPECT_EQ(MaxAbsDiff(pre_grads[0], pre_grads[1]), 0.0f)
          << c.name << " threads=" << threads << " pooled=" << pooled;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RhoSweep, FusedBitwiseTest,
    ::testing::Values(BitwiseCase{"UniformRho0", 0.0f, false},
                      BitwiseCase{"UniformRho05", 0.5f, false},
                      BitwiseCase{"UniformRho1", 1.0f, false},
                      BitwiseCase{"BiasedRho0", 0.0f, true},
                      BitwiseCase{"BiasedRho05", 0.5f, true},
                      BitwiseCase{"BiasedRho1", 1.0f, true}),
    [](const ::testing::TestParamInfo<BitwiseCase>& info) {
      return info.param.name;
    });

// The cached-weights biased sampler must be draw-for-draw identical to the
// original int-degrees overload (the caching satellite must not change which
// nodes are skipped).
TEST(BiasedSamplerCacheTest, WeightsOverloadMatchesDegreesOverload) {
  Rng rng_a(5), rng_b(5);
  const std::vector<int> degrees = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<double> weights(degrees.begin(), degrees.end());
  for (const float rho : {0.25f, 0.5f, 0.75f}) {
    EXPECT_EQ(SampleSkipMaskBiased(degrees, rho, rng_a),
              SampleSkipMaskBiased(weights, rho, rng_b))
        << "rho=" << rho;
  }
}

// Masked kernels in isolation: skipped rows of the masked SpMM output are
// left untouched, and the masked transpose ignores masked rows of g.
TEST(MaskedKernelTest, MultiplyAccumulateMaskedSkipsExactlyMaskedRows) {
  auto a = SmallAdjacency();
  Rng rng(3);
  const Matrix x = Matrix::Random(4, 5, rng);

  Matrix full(4, 5);
  a->MultiplyAccumulate(x, full);

  Matrix masked(4, 5);
  // Pre-fill so untouched rows are detectable.
  for (int j = 0; j < 5; ++j) {
    masked(1, j) = 123.0f;
    masked(3, j) = -7.0f;
  }
  a->MultiplyAccumulateMasked(x, kMixedMask, masked);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(masked(0, j), full(0, j));
    EXPECT_EQ(masked(1, j), 123.0f);
    EXPECT_EQ(masked(2, j), full(2, j));
    EXPECT_EQ(masked(3, j), -7.0f);
  }
}

TEST(MaskedKernelTest, MultiplyTransposedMaskedMatchesZeroedRows) {
  auto a = SmallAdjacency();
  Rng rng(4);
  const Matrix g = Matrix::Random(4, 5, rng);

  Matrix g_zeroed = g;
  for (int j = 0; j < 5; ++j) {
    g_zeroed(1, j) = 0.0f;
    g_zeroed(3, j) = 0.0f;
  }
  const Matrix expect = a->MultiplyTransposed(g_zeroed);
  const Matrix got = a->MultiplyTransposedMasked(g, kMixedMask);
  EXPECT_EQ(MaxAbsDiff(expect, got), 0.0f);
}

}  // namespace
}  // namespace skipnode
