// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Test-only COO convenience over CsrBuilder. Production code streams
// entries through CsrBuilder directly (DESIGN §13); tests that hold tiny
// triplet lists build through this helper instead — it replays the retired
// CsrMatrix::FromCoo shim exactly (count, fill in list order, Build), so
// duplicate coordinates still sum in per-row insertion order.

#ifndef SKIPNODE_TESTS_TESTING_COO_MATRIX_H_
#define SKIPNODE_TESTS_TESTING_COO_MATRIX_H_

#include <utility>
#include <vector>

#include "base/check.h"
#include "sparse/csr_builder.h"
#include "sparse/csr_matrix.h"

namespace skipnode {
namespace testing {

inline CsrMatrix CsrFromCoo(int rows, int cols,
                            const std::vector<std::pair<int, int>>& coords,
                            const std::vector<float>& values) {
  SKIPNODE_CHECK(coords.size() == values.size());
  CsrBuilder builder(rows, cols);
  for (const auto& [r, c] : coords) {
    SKIPNODE_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    builder.CountEntry(r);
  }
  builder.FinishCounting();
  for (size_t i = 0; i < coords.size(); ++i) {
    builder.AddEntry(coords[i].first, coords[i].second, values[i]);
  }
  return builder.Build();
}

}  // namespace testing
}  // namespace skipnode

#endif  // SKIPNODE_TESTS_TESTING_COO_MATRIX_H_
