// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The serving robustness model (DESIGN §12): admission control under every
// overload policy, per-request deadlines, structured ServeStatus errors for
// every bad input, deterministic serve-side fault injection, and
// zero-downtime hot-swap. The invariants pinned here: no input reachable
// from Submit() aborts the server, every handle resolves, accepted requests
// stay bitwise identical to FrozenModel::Logits, and across a SwapModel()
// every response is attributable to exactly one snapshot. Runs under TSan
// via tools/check_tsan.sh.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "serve/inference_server.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 1.0, 3));
  return *kGraph;
}

// A smaller graph, for swap-shrinks-the-model coverage.
Graph& SmallGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 0.5, 3));
  return *kGraph;
}

// Freezes an SGC trained on `graph` with `seed`; different seeds give
// different logits, which is what snapshot attribution needs.
std::shared_ptr<const FrozenModel> FreshModel(const Graph& graph,
                                              uint64_t seed) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 8;
  config.out_dim = graph.num_classes();
  config.num_layers = 3;
  config.dropout = 0.3f;
  Rng rng(seed);
  auto model = MakeModel("SGC", config, rng);
  Rng split_rng(seed);
  const Split split = RandomSplit(graph, 0.6, 0.2, split_rng);
  TrainNodeClassifier(*model, graph, split, StrategyConfig::None(),
                      {.options = {.epochs = 5, .seed = seed}});
  return std::make_shared<const FrozenModel>(
      FrozenModel::Freeze(*model, graph, StrategyConfig::None()));
}

const FrozenModel& TestModel() {
  static const std::shared_ptr<const FrozenModel> kModel =
      FreshModel(TestGraph(), 7);
  return *kModel;
}

std::vector<int> RequestIds(int client, int request, int num_nodes) {
  Rng rng(4000 + 17 * static_cast<uint64_t>(client) + request);
  std::vector<int> ids(1 + static_cast<size_t>(rng.UniformInt(4)));
  for (int& id : ids) {
    id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
  }
  return ids;
}

// Spins until the queue is empty — i.e. the single worker has dequeued
// everything submitted so far (and, with a stall fault armed, is stalling).
void WaitForDrainedQueue(const InferenceServer& server) {
  while (server.stats().queue_depth > 0) {
    std::this_thread::yield();
  }
}

ServeFaultPlan StallPlan(int stall_us, int64_t batch_index = 0) {
  ServeFaultPlan plan;
  plan.enabled = true;
  plan.site = ServeFaultSite::kWorkerStall;
  plan.batch_index = batch_index;
  plan.stall_us = stall_us;
  return plan;
}

TEST(ServeRobustnessTest, DefaultHandleReportsInvalidWithoutBlocking) {
  PredictionHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.status(), ServeStatus::kInvalid);
  EXPECT_FALSE(handle.ok());
}

TEST(ServeRobustnessDeathTest, DefaultHandleAccessorsAbortWithMessage) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  PredictionHandle handle;
  EXPECT_DEATH(handle.logits(), "default-constructed");
  EXPECT_DEATH(handle.classes(), "default-constructed");
}

TEST(ServeRobustnessTest, SubmitAfterShutdownResolvesShutdownDeterministically) {
  const FrozenModel& model = TestModel();
  InferenceServer server(model, {.workers = 2});
  server.Shutdown();
  for (int r = 0; r < 3; ++r) {
    PredictionHandle handle = server.Submit(RequestIds(0, r, model.num_nodes()));
    EXPECT_TRUE(handle.valid());
    EXPECT_EQ(handle.status(), ServeStatus::kShutdown);
    EXPECT_EQ(handle.logits().rows(), 0);
    EXPECT_TRUE(handle.classes().empty());
  }
  EXPECT_EQ(server.stats().rejected, 3);
}

TEST(ServeRobustnessTest, BadInputsResolveInvalidArgumentAndServerSurvives) {
  const FrozenModel& model = TestModel();
  InferenceServer server(model, {.workers = 1});
  EXPECT_EQ(server.Submit({}).status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(server.Submit({-1}).status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(server.Submit({0, model.num_nodes()}).status(),
            ServeStatus::kInvalidArgument);
  // The server is undisturbed: a good request still serves bitwise.
  const std::vector<int> ids = RequestIds(1, 0, model.num_nodes());
  PredictionHandle good = server.Submit(ids);
  EXPECT_EQ(good.status(), ServeStatus::kOk);
  EXPECT_EQ(MaxAbsDiff(good.logits(), model.Logits(ids)), 0.0f);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.invalid, 3);
  EXPECT_EQ(stats.requests, 4);
}

TEST(ServeRobustnessTest, ShedNewestBoundsQueueAndRejectsOverflow) {
  const FrozenModel& model = TestModel();
  constexpr int kCap = 4, kOverflow = 3;
  ServeOptions options{.workers = 1,
                       .max_queue_requests = kCap,
                       .overload_policy = OverloadPolicy::kShedNewest};
  options.fault = StallPlan(/*stall_us=*/200'000);
  InferenceServer server(model, options);

  // First request forms batch 0 and stalls the only worker for 200 ms;
  // everything below happens well inside the stall.
  std::vector<std::vector<int>> ids = {RequestIds(0, 0, model.num_nodes())};
  std::vector<PredictionHandle> handles = {server.Submit(ids[0])};
  WaitForDrainedQueue(server);
  for (int r = 1; r <= kCap + kOverflow; ++r) {
    ids.push_back(RequestIds(0, r, model.num_nodes()));
    handles.push_back(server.Submit(ids.back()));
  }
  // The overflow sheds resolve immediately, newest first.
  for (int r = kCap + 1; r <= kCap + kOverflow; ++r) {
    EXPECT_EQ(handles[static_cast<size_t>(r)].status(),
              ServeStatus::kRejected);
  }
  // The stalled request and the queued ones serve bitwise after the stall.
  for (int r = 0; r <= kCap; ++r) {
    ASSERT_EQ(handles[static_cast<size_t>(r)].status(), ServeStatus::kOk);
    EXPECT_EQ(MaxAbsDiff(handles[static_cast<size_t>(r)].logits(),
                         model.Logits(ids[static_cast<size_t>(r)])),
              0.0f);
  }
  server.Shutdown();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected, kOverflow);
  EXPECT_EQ(stats.queue_peak, kCap);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  ASSERT_EQ(server.fault_events().size(), 1u);
  EXPECT_EQ(server.fault_events()[0].site, ServeFaultSite::kWorkerStall);
}

TEST(ServeRobustnessTest, ShedOldestDropsQueueHeadAndAdmitsFreshRequests) {
  const FrozenModel& model = TestModel();
  constexpr int kCap = 4;
  ServeOptions options{.workers = 1,
                       .max_queue_requests = kCap,
                       .overload_policy = OverloadPolicy::kShedOldest};
  options.fault = StallPlan(/*stall_us=*/200'000);
  InferenceServer server(model, options);

  std::vector<std::vector<int>> ids = {RequestIds(1, 0, model.num_nodes())};
  std::vector<PredictionHandle> handles = {server.Submit(ids[0])};
  WaitForDrainedQueue(server);
  for (int r = 1; r <= kCap + 2; ++r) {
    ids.push_back(RequestIds(1, r, model.num_nodes()));
    handles.push_back(server.Submit(ids.back()));
  }
  // Requests 1 and 2 were the oldest queued when 5 and 6 arrived.
  EXPECT_EQ(handles[1].status(), ServeStatus::kRejected);
  EXPECT_EQ(handles[2].status(), ServeStatus::kRejected);
  for (const int r : {0, 3, 4, 5, 6}) {
    ASSERT_EQ(handles[static_cast<size_t>(r)].status(), ServeStatus::kOk)
        << "request " << r;
    EXPECT_EQ(MaxAbsDiff(handles[static_cast<size_t>(r)].logits(),
                         model.Logits(ids[static_cast<size_t>(r)])),
              0.0f);
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().rejected, 2);
  EXPECT_EQ(server.stats().queue_peak, kCap);
}

TEST(ServeRobustnessTest, BlockPolicyBackpressuresAndCompletesEverything) {
  const FrozenModel& model = TestModel();
  constexpr int kCap = 2, kRequests = 8;
  ServeOptions options{.workers = 1,
                       .max_queue_requests = kCap,
                       .overload_policy = OverloadPolicy::kBlock};
  options.fault = StallPlan(/*stall_us=*/100'000);
  InferenceServer server(model, options);

  std::vector<std::vector<int>> ids;
  std::vector<PredictionHandle> handles(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    ids.push_back(RequestIds(2, r, model.num_nodes()));
  }
  // Submit from a helper thread: with the worker stalled, Submit blocks
  // once the queue holds kCap requests.
  std::thread submitter([&] {
    for (int r = 0; r < kRequests; ++r) {
      handles[static_cast<size_t>(r)] = server.Submit(ids[static_cast<size_t>(r)]);
    }
  });
  submitter.join();
  for (int r = 0; r < kRequests; ++r) {
    ASSERT_EQ(handles[static_cast<size_t>(r)].status(), ServeStatus::kOk);
    EXPECT_EQ(MaxAbsDiff(handles[static_cast<size_t>(r)].logits(),
                         model.Logits(ids[static_cast<size_t>(r)])),
              0.0f);
  }
  server.Shutdown();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_LE(stats.queue_peak, kCap);
  EXPECT_EQ(stats.requests, kRequests);
}

TEST(ServeRobustnessTest, BlockedSubmitterResolvesShutdownOnShutdown) {
  const FrozenModel& model = TestModel();
  ServeOptions options{.workers = 1,
                       .max_queue_requests = 1,
                       .overload_policy = OverloadPolicy::kBlock};
  options.fault = StallPlan(/*stall_us=*/200'000);
  InferenceServer server(model, options);

  const std::vector<int> ids = RequestIds(3, 0, model.num_nodes());
  PredictionHandle stalled = server.Submit(ids);
  WaitForDrainedQueue(server);
  PredictionHandle queued = server.Submit(ids);  // fills the 1-slot queue
  PredictionHandle blocked;
  std::thread submitter([&] { blocked = server.Submit(ids); });
  // Shutdown wakes the blocked submitter with a structured error; the
  // stalled and queued requests still drain to kOk.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Shutdown();
  submitter.join();
  EXPECT_EQ(blocked.status(), ServeStatus::kShutdown);
  EXPECT_EQ(stalled.status(), ServeStatus::kOk);
  EXPECT_EQ(queued.status(), ServeStatus::kOk);
}

TEST(ServeRobustnessTest, DeadlinesExpireAtDequeueAndAtBatchClose) {
  const FrozenModel& model = TestModel();
  ServeOptions options{.workers = 1};
  options.fault = StallPlan(/*stall_us=*/100'000);
  InferenceServer server(model, options);

  // The first request rides batch 0 and expires at batch close (the stall
  // outlasts its 5 ms deadline); the queued ones expire at dequeue.
  constexpr int kExpiring = 6;
  std::vector<PredictionHandle> handles;
  handles.push_back(
      server.Submit(RequestIds(4, 0, model.num_nodes()), /*deadline_us=*/5000));
  WaitForDrainedQueue(server);
  for (int r = 1; r < kExpiring; ++r) {
    handles.push_back(server.Submit(RequestIds(4, r, model.num_nodes()),
                                    /*deadline_us=*/5000));
  }
  for (const PredictionHandle& handle : handles) {
    EXPECT_EQ(handle.status(), ServeStatus::kDeadlineExceeded);
    EXPECT_EQ(handle.logits().rows(), 0);
  }
  // Deadline-free requests submitted afterwards serve normally.
  const std::vector<int> ids = RequestIds(4, 100, model.num_nodes());
  PredictionHandle good = server.Submit(ids);
  EXPECT_EQ(good.status(), ServeStatus::kOk);
  EXPECT_EQ(MaxAbsDiff(good.logits(), model.Logits(ids)), 0.0f);
  server.Shutdown();
  EXPECT_EQ(server.stats().deadline_exceeded, kExpiring);
}

TEST(ServeRobustnessTest, BatchDropFailsTheBatchStructurally) {
  const FrozenModel& model = TestModel();
  ServeOptions options{.workers = 1};
  options.fault.enabled = true;
  options.fault.site = ServeFaultSite::kBatchDrop;
  options.fault.batch_index = 0;
  InferenceServer server(model, options);

  PredictionHandle dropped =
      server.Submit(RequestIds(5, 0, model.num_nodes()));
  EXPECT_EQ(dropped.status(), ServeStatus::kRejected);
  // One-shot: later batches compute normally.
  const std::vector<int> ids = RequestIds(5, 1, model.num_nodes());
  PredictionHandle good = server.Submit(ids);
  EXPECT_EQ(good.status(), ServeStatus::kOk);
  EXPECT_EQ(MaxAbsDiff(good.logits(), model.Logits(ids)), 0.0f);
  server.Shutdown();
  EXPECT_EQ(server.stats().rejected, 1);
  ASSERT_EQ(server.fault_events().size(), 1u);
  EXPECT_EQ(server.fault_events()[0].site, ServeFaultSite::kBatchDrop);
  EXPECT_EQ(server.fault_events()[0].batch_index, 0);
}

// Hot swap with a synchronization point: phase-1 traffic fully resolves on
// snapshot A, then SwapModel(B), then phase-2 traffic — so attribution is
// exact: phase 1 is bitwise A, phase 2 is bitwise B, at 1/4/8 workers.
TEST(ServeRobustnessTest, HotSwapPhasesAreBitwisePerSnapshot) {
  const auto a = FreshModel(TestGraph(), 7);
  const auto b = FreshModel(TestGraph(), 11);
  ASSERT_GT(MaxAbsDiff(a->full_logits(), b->full_logits()), 0.0f);
  for (const int workers : {1, 4, 8}) {
    InferenceServer server(a, {.workers = workers, .batch_window_us = 200});
    const auto run_phase = [&](const FrozenModel& expect, int phase) {
      constexpr int kClients = 4, kPerClient = 6;
      std::vector<std::thread> threads;
      std::vector<int> mismatches(kClients, 0);
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          for (int r = 0; r < kPerClient; ++r) {
            const std::vector<int> ids =
                RequestIds(100 * phase + c, r, expect.num_nodes());
            PredictionHandle handle = server.Submit(ids);
            if (handle.status() != ServeStatus::kOk ||
                MaxAbsDiff(handle.logits(), expect.Logits(ids)) != 0.0f) {
              ++mismatches[static_cast<size_t>(c)];
            }
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      for (const int m : mismatches) EXPECT_EQ(m, 0) << workers << " workers";
    };
    run_phase(*a, /*phase=*/1);
    server.SwapModel(b);
    run_phase(*b, /*phase=*/2);
    server.Shutdown();
    EXPECT_EQ(server.stats().swaps, 1);
  }
}

// Hot swap racing live traffic: every response must match exactly one of
// the two snapshots, and per client the snapshot sequence is monotone
// (batches are formed in submit order and the snapshot only moves forward).
TEST(ServeRobustnessTest, HotSwapUnderConcurrentTrafficAttributable) {
  const auto a = FreshModel(TestGraph(), 7);
  const auto b = FreshModel(TestGraph(), 11);
  for (const int workers : {1, 4, 8}) {
    InferenceServer server(a, {.workers = workers, .batch_window_us = 300});
    constexpr int kClients = 6, kPerClient = 20;
    std::vector<std::thread> threads;
    std::vector<int> failures(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        bool saw_b = false;
        for (int r = 0; r < kPerClient; ++r) {
          const std::vector<int> ids = RequestIds(c, r, a->num_nodes());
          PredictionHandle handle = server.Submit(ids);
          if (handle.status() != ServeStatus::kOk) {
            ++failures[static_cast<size_t>(c)];
            continue;
          }
          const bool is_a = MaxAbsDiff(handle.logits(), a->Logits(ids)) == 0.0f;
          const bool is_b = MaxAbsDiff(handle.logits(), b->Logits(ids)) == 0.0f;
          if (!is_a && !is_b) ++failures[static_cast<size_t>(c)];
          if (saw_b && !is_b) ++failures[static_cast<size_t>(c)];
          if (is_b && !is_a) saw_b = true;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server.SwapModel(b);
    for (std::thread& thread : threads) thread.join();
    server.Shutdown();
    for (const int f : failures) EXPECT_EQ(f, 0) << workers << " workers";
    EXPECT_EQ(server.stats().swaps, 1);
  }
}

TEST(ServeRobustnessTest, SwapToSmallerModelInvalidatesStaleIdsStructurally) {
  const auto big = FreshModel(TestGraph(), 7);
  const auto small = FreshModel(SmallGraph(), 7);
  ASSERT_LT(small->num_nodes(), big->num_nodes());

  ServeOptions options{.workers = 1};
  options.fault = StallPlan(/*stall_us=*/100'000);
  InferenceServer server(big, options);

  // Batch 0 captures `big` at formation and stalls; the high-id request is
  // admitted against `big`, but its batch forms after the swap to `small`,
  // so it resolves kInvalidArgument at compute time instead of aborting.
  const std::vector<int> first_ids = {0, 1};
  PredictionHandle first = server.Submit(first_ids);
  WaitForDrainedQueue(server);
  const std::vector<int> stale_ids = {big->num_nodes() - 1};
  PredictionHandle stale = server.Submit(stale_ids);
  const std::vector<int> fresh_ids = {0};
  PredictionHandle fresh = server.Submit(fresh_ids);
  server.SwapModel(small);

  EXPECT_EQ(first.status(), ServeStatus::kOk);
  EXPECT_EQ(MaxAbsDiff(first.logits(), big->Logits(first_ids)), 0.0f);
  EXPECT_EQ(stale.status(), ServeStatus::kInvalidArgument);
  EXPECT_EQ(fresh.status(), ServeStatus::kOk);
  EXPECT_EQ(MaxAbsDiff(fresh.logits(), small->Logits(fresh_ids)), 0.0f);
  server.Shutdown();
  EXPECT_EQ(server.stats().invalid, 1);
}

// Mixed good/bad traffic at 1/4/8 workers under a shed policy: every handle
// resolves to some status, ok responses stay bitwise, the accounting
// balances, and nothing aborts.
TEST(ServeRobustnessTest, MixedTrafficAccountingBalancesAtManyWorkers) {
  const FrozenModel& model = TestModel();
  for (const int workers : {1, 4, 8}) {
    InferenceServer server(model,
                           {.workers = workers,
                            .batch_window_us = 100,
                            .max_queue_requests = 16,
                            .overload_policy = OverloadPolicy::kShedNewest});
    constexpr int kClients = 6, kPerClient = 12;
    std::vector<std::thread> threads;
    std::vector<int64_t> ok(kClients, 0), failed(kClients, 0),
        bitwise_bad(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (int r = 0; r < kPerClient; ++r) {
          std::vector<int> ids = RequestIds(c, r, model.num_nodes());
          if (r % 4 == 1) ids = {};                      // invalid
          if (r % 4 == 3) ids.push_back(-5);             // invalid
          PredictionHandle handle = server.Submit(ids);
          const ServeStatus status = handle.status();
          if (status == ServeStatus::kOk) {
            ++ok[static_cast<size_t>(c)];
            if (MaxAbsDiff(handle.logits(), model.Logits(ids)) != 0.0f) {
              ++bitwise_bad[static_cast<size_t>(c)];
            }
          } else {
            ++failed[static_cast<size_t>(c)];
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    server.Shutdown();
    int64_t total_ok = 0, total_failed = 0;
    for (int c = 0; c < kClients; ++c) {
      total_ok += ok[static_cast<size_t>(c)];
      total_failed += failed[static_cast<size_t>(c)];
      EXPECT_EQ(bitwise_bad[static_cast<size_t>(c)], 0);
    }
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.requests, kClients * kPerClient);
    EXPECT_EQ(stats.requests, total_ok + total_failed);
    EXPECT_EQ(total_failed,
              stats.rejected + stats.deadline_exceeded + stats.invalid);
    EXPECT_EQ(stats.invalid, kClients * kPerClient / 2);
    EXPECT_LE(stats.queue_peak, 16);
  }
}

}  // namespace
}  // namespace skipnode
