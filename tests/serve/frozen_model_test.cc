// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The FrozenModel bitwise contract: every serving read — full table,
// row-sliced batch (gather path and linear-head Gemm path), argmax classes,
// checkpoint restore — reproduces EvaluateLogits exactly, at any thread
// count.

#include "serve/frozen_model.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/parallel.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/checkpoint.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 1.0, 3));
  return *kGraph;
}

ModelConfig SmallConfig() {
  Graph& graph = TestGraph();
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 8;
  config.out_dim = graph.num_classes();
  config.num_layers = 3;
  config.dropout = 0.3f;
  return config;
}

// A briefly trained model, so the weights are not just their init values.
std::unique_ptr<Model> TrainedModel(const std::string& name) {
  Rng rng(7);
  auto model = MakeModel(name, SmallConfig(), rng);
  Rng split_rng(7);
  const Split split = RandomSplit(TestGraph(), 0.6, 0.2, split_rng);
  TrainNodeClassifier(*model, TestGraph(), split, StrategyConfig::None(),
                      {.options = {.epochs = 5, .seed = 7}});
  return model;
}

std::vector<int> SomeIds(int num_nodes) {
  // Out of order, with repeats.
  return {num_nodes - 1, 0, 3, 3, num_nodes / 2, 1};
}

TEST(FrozenModelTest, HeadExportMatchesTheLinearHeadBackbones) {
  for (const std::string& name : AllModelNames()) {
    Rng rng(5);
    auto model = MakeModel(name, SmallConfig(), rng);
    ServingHead head;
    const bool exported = model->ExportServingHead(&head);
    const bool expected =
        name == "SGC" || name == "JKNet" || name == "GCNII";
    EXPECT_EQ(exported, expected) << name;
    if (exported) {
      EXPECT_GT(head.weight.rows(), 0) << name;
      EXPECT_EQ(head.weight.cols(), TestGraph().num_classes()) << name;
    }
  }
}

TEST(FrozenModelTest, GatherPathIsBitwiseEvaluateLogits) {
  auto model = TrainedModel("GCN");
  const Matrix reference =
      EvaluateLogits(*model, TestGraph(), StrategyConfig::None());
  const FrozenModel frozen =
      FrozenModel::Freeze(*model, TestGraph(), StrategyConfig::None());
  EXPECT_FALSE(frozen.has_linear_head());
  EXPECT_EQ(MaxAbsDiff(frozen.full_logits(), reference), 0.0f);

  const std::vector<int> ids = SomeIds(frozen.num_nodes());
  EXPECT_EQ(MaxAbsDiff(frozen.Logits(ids), GatherRows(reference, ids)), 0.0f);
}

TEST(FrozenModelTest, LinearHeadPathIsBitwiseEvaluateLogitsAtAnyThreadCount) {
  for (const std::string& name : {std::string("SGC"), std::string("GCNII"),
                                  std::string("JKNet")}) {
    auto model = TrainedModel(name);
    const Matrix reference =
        EvaluateLogits(*model, TestGraph(), StrategyConfig::None());
    const FrozenModel frozen =
        FrozenModel::Freeze(*model, TestGraph(), StrategyConfig::None());
    ASSERT_TRUE(frozen.has_linear_head()) << name;
    EXPECT_EQ(MaxAbsDiff(frozen.full_logits(), reference), 0.0f) << name;

    const std::vector<int> ids = SomeIds(frozen.num_nodes());
    const Matrix expected = GatherRows(reference, ids);
    for (const int threads : {1, 4, 8}) {
      SetParallelThreadCount(threads);
      EXPECT_EQ(MaxAbsDiff(frozen.Logits(ids), expected), 0.0f)
          << name << " @ " << threads << " threads";
    }
    SetParallelThreadCount(0);
  }
}

TEST(FrozenModelTest, FreezeUnderAStrategyMatchesEvaluateLogits) {
  auto model = TrainedModel("SGC");
  const StrategyConfig strategy = StrategyConfig::SkipNodeU(0.5f);
  const Matrix reference = EvaluateLogits(*model, TestGraph(), strategy);
  const FrozenModel frozen =
      FrozenModel::Freeze(*model, TestGraph(), strategy);
  const std::vector<int> ids = SomeIds(frozen.num_nodes());
  EXPECT_EQ(MaxAbsDiff(frozen.Logits(ids), GatherRows(reference, ids)), 0.0f);
}

TEST(FrozenModelTest, PredictIsArgmaxOfLogits) {
  auto model = TrainedModel("SGC");
  const FrozenModel frozen =
      FrozenModel::Freeze(*model, TestGraph(), StrategyConfig::None());
  const std::vector<int> ids = SomeIds(frozen.num_nodes());
  const Matrix logits = frozen.Logits(ids);
  const std::vector<int> classes = frozen.Predict(ids);
  ASSERT_EQ(classes.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c) {
      if (logits(static_cast<int>(i), c) > logits(static_cast<int>(i), best)) {
        best = c;
      }
    }
    EXPECT_EQ(classes[i], best) << "row " << i;
  }
}

TEST(FrozenModelTest, EmbeddingsComeFromThePenultimateTable) {
  auto model = TrainedModel("GCN");
  const FrozenModel frozen =
      FrozenModel::Freeze(*model, TestGraph(), StrategyConfig::None());
  EXPECT_EQ(MaxAbsDiff(frozen.embedding_table(), model->Penultimate()), 0.0f);
  const std::vector<int> ids = SomeIds(frozen.num_nodes());
  EXPECT_EQ(
      MaxAbsDiff(frozen.Embeddings(ids), GatherRows(model->Penultimate(), ids)),
      0.0f);
}

TEST(FrozenModelTest, CheckpointRoundTripIsBitwise) {
  const std::string dir = ::testing::TempDir() + "frozen_roundtrip";
  auto model = TrainedModel("GCNII");
  ASSERT_TRUE(SaveModelParameters(*model, dir));
  const FrozenModel live =
      FrozenModel::Freeze(*model, TestGraph(), StrategyConfig::None());
  const FrozenModel restored = FrozenModel::FromCheckpoint(
      dir, "GCNII", SmallConfig(), TestGraph(), StrategyConfig::None());
  EXPECT_EQ(MaxAbsDiff(restored.full_logits(), live.full_logits()), 0.0f);
  EXPECT_EQ(MaxAbsDiff(restored.embedding_table(), live.embedding_table()),
            0.0f);
  EXPECT_TRUE(restored.has_linear_head());
  const std::vector<int> ids = SomeIds(live.num_nodes());
  EXPECT_EQ(MaxAbsDiff(restored.Logits(ids), live.Logits(ids)), 0.0f);
}

TEST(FrozenModelTest, TryFromCheckpointLoadsBitwiseAndRejectsWithErrors) {
  const std::string dir = ::testing::TempDir() + "frozen_try_roundtrip";
  auto model = TrainedModel("GCN");
  ASSERT_TRUE(SaveModelParameters(*model, dir));
  const FrozenModel live =
      FrozenModel::Freeze(*model, TestGraph(), StrategyConfig::None());

  // Success path: bitwise the FromCheckpoint result, no error written.
  std::string error = "unchanged";
  std::unique_ptr<FrozenModel> restored = FrozenModel::TryFromCheckpoint(
      dir, "GCN", SmallConfig(), TestGraph(), StrategyConfig::None(), &error);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(error, "unchanged");
  EXPECT_EQ(MaxAbsDiff(restored->full_logits(), live.full_logits()), 0.0f);

  // Failure paths return nullptr + a structured message, never abort.
  EXPECT_EQ(FrozenModel::TryFromCheckpoint(
                ::testing::TempDir() + "frozen_try_nowhere", "GCN",
                SmallConfig(), TestGraph(), StrategyConfig::None(), &error),
            nullptr);
  EXPECT_NE(error.find("no readable checkpoint manifest"), std::string::npos);

  ModelConfig deeper = SmallConfig();
  deeper.num_layers = 5;
  EXPECT_EQ(FrozenModel::TryFromCheckpoint(dir, "GCN", deeper, TestGraph(),
                                           StrategyConfig::None(), &error),
            nullptr);
  EXPECT_NE(error.find("different architecture"), std::string::npos);

  // A null error sink is allowed on every path.
  EXPECT_EQ(FrozenModel::TryFromCheckpoint(dir, "GCN", deeper, TestGraph(),
                                           StrategyConfig::None(), nullptr),
            nullptr);
}

TEST(FrozenModelDeathTest, MismatchedArchitectureDiesWithClearMessage) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string dir = ::testing::TempDir() + "frozen_arch_mismatch";
  auto model = TrainedModel("GCN");
  ASSERT_TRUE(SaveModelParameters(*model, dir));

  // Same backbone, different depth: parameter set disagrees.
  ModelConfig deeper = SmallConfig();
  deeper.num_layers = 5;
  EXPECT_DEATH(FrozenModel::FromCheckpoint(dir, "GCN", deeper, TestGraph(),
                                           StrategyConfig::None()),
               "different architecture");

  // Same depth, different hidden width: shapes disagree.
  ModelConfig wider = SmallConfig();
  wider.hidden_dim = 16;
  EXPECT_DEATH(FrozenModel::FromCheckpoint(dir, "GCN", wider, TestGraph(),
                                           StrategyConfig::None()),
               "ModelConfig needs");

  // No checkpoint at all.
  EXPECT_DEATH(
      FrozenModel::FromCheckpoint(::testing::TempDir() + "frozen_nowhere",
                                  "GCN", SmallConfig(), TestGraph(),
                                  StrategyConfig::None()),
      "no readable checkpoint manifest");
}

}  // namespace
}  // namespace skipnode
