// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// InferenceServer under real concurrency: N client threads, batching window
// on and off, multiple workers. The serving contract is that every
// request's result is bitwise what FrozenModel::Logits would return solo —
// independent of arrival order, batch composition, worker count, and the
// window setting. Runs under TSan via tools/check_tsan.sh.

#include "serve/inference_server.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/parallel.h"
#include "base/rng.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 1.0, 3));
  return *kGraph;
}

const FrozenModel& TestModel(const std::string& name) {
  static std::map<std::string, std::unique_ptr<FrozenModel>>* const kCache =
      new std::map<std::string, std::unique_ptr<FrozenModel>>();
  auto it = kCache->find(name);
  if (it == kCache->end()) {
    ModelConfig config;
    config.in_dim = TestGraph().feature_dim();
    config.hidden_dim = 8;
    config.out_dim = TestGraph().num_classes();
    config.num_layers = 3;
    config.dropout = 0.3f;
    Rng rng(7);
    auto model = MakeModel(name, config, rng);
    Rng split_rng(7);
    const Split split = RandomSplit(TestGraph(), 0.6, 0.2, split_rng);
    TrainNodeClassifier(*model, TestGraph(), split, StrategyConfig::None(),
                        {.options = {.epochs = 5, .seed = 7}});
    it = kCache
             ->emplace(name, std::make_unique<FrozenModel>(FrozenModel::Freeze(
                                 *model, TestGraph(), StrategyConfig::None())))
             .first;
  }
  return *it->second;
}

// A deterministic request load: client c's r-th request, seeded per client.
std::vector<int> RequestIds(int client, int request, int num_nodes) {
  Rng rng(1000 + 17 * static_cast<uint64_t>(client) + request);
  std::vector<int> ids(1 + static_cast<size_t>(rng.UniformInt(4)));
  for (int& id : ids) {
    id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
  }
  return ids;
}

struct ClientResult {
  std::vector<int> ids;
  Matrix logits;
  std::vector<int> classes;
};

// Fires `clients` threads, each submitting `per_client` requests, and
// returns every fulfilled result keyed by (client, request).
std::vector<std::vector<ClientResult>> RunTraffic(const FrozenModel& model,
                                                  const ServeOptions& options,
                                                  int clients,
                                                  int per_client) {
  InferenceServer server(model, options);
  std::vector<std::vector<ClientResult>> results(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    results[static_cast<size_t>(c)].resize(static_cast<size_t>(per_client));
    threads.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        ClientResult& result = results[static_cast<size_t>(c)]
                                      [static_cast<size_t>(r)];
        result.ids = RequestIds(c, r, model.num_nodes());
        PredictionHandle handle = server.Submit(result.ids);
        result.logits = handle.logits();
        result.classes = handle.classes();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Shutdown();
  EXPECT_EQ(server.stats().requests,
            static_cast<int64_t>(clients) * per_client);
  return results;
}

void ExpectBitwiseSolo(const FrozenModel& model,
                       const std::vector<std::vector<ClientResult>>& results) {
  for (const auto& client : results) {
    for (const ClientResult& result : client) {
      ASSERT_EQ(result.logits.rows(), static_cast<int>(result.ids.size()));
      EXPECT_EQ(MaxAbsDiff(result.logits, model.Logits(result.ids)), 0.0f);
      EXPECT_EQ(result.classes, model.Predict(result.ids));
    }
  }
}

TEST(ServeConcurrencyTest, WindowOffIsOneRequestPerBatch) {
  const FrozenModel& model = TestModel("SGC");
  InferenceServer server(model, {.workers = 1, .batch_window_us = 0});
  std::vector<PredictionHandle> handles;
  for (int r = 0; r < 12; ++r) {
    handles.push_back(server.Submit(RequestIds(0, r, model.num_nodes())));
  }
  for (const PredictionHandle& handle : handles) handle.logits();
  server.Shutdown();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, 12);
  EXPECT_EQ(stats.batches, 12);  // No window: never coalesced.
}

TEST(ServeConcurrencyTest, ManyClientsWindowOffBitwise) {
  const FrozenModel& model = TestModel("SGC");
  ExpectBitwiseSolo(
      model, RunTraffic(model, {.workers = 2, .batch_window_us = 0},
                        /*clients=*/8, /*per_client=*/6));
}

TEST(ServeConcurrencyTest, ManyClientsWindowOnBitwiseAndCoalesces) {
  const FrozenModel& model = TestModel("SGC");
  InferenceServer server(
      model, {.workers = 1, .max_batch_rows = 64, .batch_window_us = 2000});
  constexpr int kClients = 8, kPerClient = 6;
  std::vector<std::vector<ClientResult>> results(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    results[static_cast<size_t>(c)].resize(kPerClient);
    threads.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        ClientResult& result =
            results[static_cast<size_t>(c)][static_cast<size_t>(r)];
        result.ids = RequestIds(c, r, model.num_nodes());
        PredictionHandle handle = server.Submit(result.ids);
        result.logits = handle.logits();
        result.classes = handle.classes();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Shutdown();
  ExpectBitwiseSolo(model, results);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  // Coalescing is timing-dependent, but the accounting must balance.
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GE(stats.batches, 1);
}

TEST(ServeConcurrencyTest, GatherPathBackboneServesBitwiseToo) {
  const FrozenModel& model = TestModel("GCN");
  ExpectBitwiseSolo(
      model, RunTraffic(model, {.workers = 2, .batch_window_us = 500},
                        /*clients=*/4, /*per_client=*/4));
}

TEST(ServeConcurrencyTest, ResultsIndependentOfArrivalOrderAndWindow) {
  const FrozenModel& model = TestModel("SGC");
  // Same request population under three very different serving regimes.
  const auto a = RunTraffic(model, {.workers = 1, .batch_window_us = 0},
                            /*clients=*/6, /*per_client=*/4);
  const auto b = RunTraffic(
      model, {.workers = 3, .max_batch_rows = 16, .batch_window_us = 1500},
      /*clients=*/6, /*per_client=*/4);
  const auto c = RunTraffic(
      model, {.workers = 2, .max_batch_rows = 4, .batch_window_us = 300},
      /*clients=*/6, /*per_client=*/4);
  for (size_t ci = 0; ci < a.size(); ++ci) {
    for (size_t r = 0; r < a[ci].size(); ++r) {
      EXPECT_EQ(MaxAbsDiff(a[ci][r].logits, b[ci][r].logits), 0.0f);
      EXPECT_EQ(MaxAbsDiff(a[ci][r].logits, c[ci][r].logits), 0.0f);
      EXPECT_EQ(a[ci][r].classes, b[ci][r].classes);
      EXPECT_EQ(a[ci][r].classes, c[ci][r].classes);
    }
  }
}

TEST(ServeConcurrencyTest, ShutdownDrainsEveryPendingRequest) {
  const FrozenModel& model = TestModel("SGC");
  auto server = std::make_unique<InferenceServer>(
      model, ServeOptions{.workers = 1, .batch_window_us = 100});
  std::vector<PredictionHandle> handles;
  std::vector<std::vector<int>> ids;
  for (int r = 0; r < 20; ++r) {
    ids.push_back(RequestIds(3, r, model.num_nodes()));
    handles.push_back(server->Submit(ids.back()));
  }
  server->Shutdown();
  const ServeStats stats = server->stats();
  EXPECT_EQ(stats.requests, 20);
  server.reset();  // Handles stay valid after the server dies.
  for (int r = 0; r < 20; ++r) {
    EXPECT_EQ(MaxAbsDiff(handles[static_cast<size_t>(r)].logits(),
                         model.Logits(ids[static_cast<size_t>(r)])),
              0.0f);
  }
}

TEST(ServeConcurrencyTest, ServerRunsWhileKernelsStayDeterministic) {
  // Server workers call the parallel Gemm while client threads hammer the
  // queue — the repo's first concurrent consumer of the thread pool. Pin
  // the pool wide to make the interleaving real under TSan.
  SetParallelThreadCount(4);
  const FrozenModel& model = TestModel("GCNII");
  ExpectBitwiseSolo(
      model, RunTraffic(model, {.workers = 3, .batch_window_us = 800},
                        /*clients=*/6, /*per_client=*/5));
  SetParallelThreadCount(0);
}

}  // namespace
}  // namespace skipnode
