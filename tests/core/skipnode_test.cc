// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "core/skipnode.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(SkipNodeSamplingTest, UniformRateIsRespected) {
  Rng rng(1);
  const int n = 2000;
  const float rho = 0.35f;
  int total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    total += CountSkipped(SampleSkipMaskUniform(n, rho, rng));
  }
  EXPECT_NEAR(static_cast<double>(total) / (n * trials), rho, 0.02);
}

TEST(SkipNodeSamplingTest, UniformEdgeRates) {
  Rng rng(2);
  EXPECT_EQ(CountSkipped(SampleSkipMaskUniform(100, 0.0f, rng)), 0);
  EXPECT_EQ(CountSkipped(SampleSkipMaskUniform(100, 1.0f, rng)), 100);
}

TEST(SkipNodeSamplingTest, BiasedSelectsExactCount) {
  Rng rng(3);
  std::vector<int> degrees(100);
  for (int i = 0; i < 100; ++i) degrees[i] = 1 + i % 5;
  for (const float rho : {0.1f, 0.33f, 0.5f, 0.9f}) {
    const auto mask = SampleSkipMaskBiased(degrees, rho, rng);
    EXPECT_EQ(CountSkipped(mask),
              static_cast<int>(std::lround(rho * 100)));
  }
}

TEST(SkipNodeSamplingTest, BiasedPrefersHighDegreeNodes) {
  Rng rng(4);
  // Node 0 has degree 50, everyone else degree 1.
  std::vector<int> degrees(200, 1);
  degrees[0] = 50;
  int node0_selected = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto mask = SampleSkipMaskBiased(degrees, 0.05f, rng);  // k = 10.
    node0_selected += mask[0];
  }
  // Uniform sampling would select node 0 with probability k/n = 0.05; the
  // degree bias pushes it far higher.
  EXPECT_GT(static_cast<double>(node0_selected) / trials, 0.5);
}

TEST(SkipNodeSamplingTest, BiasedMarginalRatesScaleWithDegree) {
  Rng rng(5);
  std::vector<int> degrees = {1, 2, 4, 8};
  std::vector<int> counts(4, 0);
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    const auto mask = SampleSkipMaskBiased(degrees, 0.25f, rng);  // k = 1.
    for (int i = 0; i < 4; ++i) counts[i] += mask[i];
  }
  // For k = 1 the selection probability is exactly degree / total.
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 8.0 / 15.0, 0.03);
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 1.0 / 15.0, 0.02);
}

TEST(SkipNodeSamplingTest, CountSkipped) {
  EXPECT_EQ(CountSkipped({1, 0, 1, 1, 0}), 3);
  EXPECT_EQ(CountSkipped({}), 0);
}

}  // namespace
}  // namespace skipnode
