// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tests for the per-layer rho schedule extension (StrategyConfig::rho_growth)
// and the middle-call counter it relies on.

#include <gtest/gtest.h>

#include "core/strategies.h"
#include "graph/datasets.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

class RhoScheduleTest : public ::testing::Test {
 protected:
  RhoScheduleTest() : graph_(BuildDatasetByName("cornell_like", 1.0, 2)) {}

  // Applies TransformMiddle once and returns the fraction of rows taken from
  // the skip path (pre is all ones, conv all zeros, so the source of every
  // row is unambiguous).
  double SkippedFraction(StrategyContext& ctx, Tape& tape) {
    Var pre = tape.Constant(Matrix::Ones(graph_.num_nodes(), 3));
    Var conv = tape.Constant(Matrix(graph_.num_nodes(), 3));
    Var out = ctx.TransformMiddle(tape, pre, conv);
    int skipped = 0;
    for (int r = 0; r < out.rows(); ++r) {
      if (out.value()(r, 0) == 1.0f) ++skipped;
    }
    return static_cast<double>(skipped) / graph_.num_nodes();
  }

  Graph graph_;
  Rng rng_{7};
};

TEST_F(RhoScheduleTest, MiddleCallsCount) {
  StrategyContext ctx(graph_, StrategyConfig::None(), true, rng_);
  Tape tape;
  EXPECT_EQ(ctx.middle_calls(), 0);
  SkippedFraction(ctx, tape);
  SkippedFraction(ctx, tape);
  EXPECT_EQ(ctx.middle_calls(), 2);
}

TEST_F(RhoScheduleTest, ZeroGrowthIsConstantRate) {
  StrategyConfig config = StrategyConfig::SkipNodeU(0.5f);
  StrategyContext ctx(graph_, config, true, rng_);
  Tape tape;
  // Average over several layers; each should hover around 0.5.
  double total = 0.0;
  const int layers = 20;
  for (int l = 0; l < layers; ++l) total += SkippedFraction(ctx, tape);
  EXPECT_NEAR(total / layers, 0.5, 0.1);
}

TEST_F(RhoScheduleTest, GrowthIncreasesSkippingWithDepth) {
  StrategyConfig config = StrategyConfig::SkipNodeU(0.0f);
  config.rho_growth = 0.1f;
  StrategyContext ctx(graph_, config, true, rng_);
  Tape tape;
  // Layer 0: rho = 0 -> nothing skipped.
  EXPECT_EQ(SkippedFraction(ctx, tape), 0.0);
  // Layer 5: rho = 0.5.
  for (int l = 1; l < 5; ++l) SkippedFraction(ctx, tape);
  const double at_five = SkippedFraction(ctx, tape);
  EXPECT_NEAR(at_five, 0.5, 0.15);
  // Far past the clamp: rho = 1 -> everything skipped.
  for (int l = 6; l < 12; ++l) SkippedFraction(ctx, tape);
  EXPECT_EQ(SkippedFraction(ctx, tape), 1.0);
}

TEST_F(RhoScheduleTest, GrowthAppliesToBiasedSamplingToo) {
  StrategyConfig config = StrategyConfig::SkipNodeB(0.0f);
  config.rho_growth = 0.25f;
  StrategyContext ctx(graph_, config, true, rng_);
  Tape tape;
  EXPECT_EQ(SkippedFraction(ctx, tape), 0.0);              // rho = 0.
  EXPECT_NEAR(SkippedFraction(ctx, tape), 0.25, 0.02);     // rho = 0.25.
  EXPECT_NEAR(SkippedFraction(ctx, tape), 0.50, 0.02);     // rho = 0.5.
}

TEST_F(RhoScheduleTest, ScheduleInactiveAtEval) {
  StrategyConfig config = StrategyConfig::SkipNodeU(0.3f);
  config.rho_growth = 0.2f;
  StrategyContext ctx(graph_, config, /*training=*/false, rng_);
  Tape tape;
  for (int l = 0; l < 5; ++l) {
    EXPECT_EQ(SkippedFraction(ctx, tape), 0.0);
  }
}

TEST_F(RhoScheduleTest, NegativeGrowthDecaysToZero) {
  StrategyConfig config = StrategyConfig::SkipNodeU(0.4f);
  config.rho_growth = -0.2f;
  StrategyContext ctx(graph_, config, true, rng_);
  Tape tape;
  EXPECT_GT(SkippedFraction(ctx, tape), 0.1);  // rho = 0.4.
  SkippedFraction(ctx, tape);                  // rho = 0.2.
  EXPECT_EQ(SkippedFraction(ctx, tape), 0.0);  // Clamped at 0.
}

}  // namespace
}  // namespace skipnode
