// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "core/strategies.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

class StrategiesTest : public ::testing::Test {
 protected:
  StrategiesTest() : graph_(BuildDatasetByName("cornell_like", 1.0, 1)) {}

  Graph graph_;
  Rng rng_{42};
};

TEST_F(StrategiesTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(StrategyKind::kNone), "-");
  EXPECT_STREQ(StrategyName(StrategyKind::kSkipNodeUniform), "SkipNode-U");
  EXPECT_STREQ(StrategyName(StrategyKind::kSkipNodeBiased), "SkipNode-B");
  EXPECT_STREQ(StrategyName(StrategyKind::kDropEdge), "DropEdge");
  EXPECT_STREQ(StrategyName(StrategyKind::kDropNode), "DropNode");
  EXPECT_STREQ(StrategyName(StrategyKind::kPairNorm), "PairNorm");
}

TEST_F(StrategiesTest, NoneUsesCachedAdjacencyAndIdentityTransform) {
  StrategyContext ctx(graph_, StrategyConfig::None(), /*training=*/true,
                      rng_);
  EXPECT_EQ(ctx.LayerAdjacency(0).get(),
            graph_.normalized_adjacency().get());

  Tape tape;
  Rng value_rng(1);
  Var pre = tape.Constant(Matrix::Random(graph_.num_nodes(), 4, value_rng));
  Var conv = tape.Constant(Matrix::Random(graph_.num_nodes(), 4, value_rng));
  Var out = ctx.TransformMiddle(tape, pre, conv);
  EXPECT_LT(MaxAbsDiff(out.value(), conv.value()), 1e-7f);
}

TEST_F(StrategiesTest, SkipNodePreservesSkippedRowsExactly) {
  StrategyContext ctx(graph_, StrategyConfig::SkipNodeU(0.5f),
                      /*training=*/true, rng_);
  Tape tape;
  Rng value_rng(2);
  Matrix pre_val = Matrix::Random(graph_.num_nodes(), 4, value_rng);
  Matrix conv_val = Matrix::Random(graph_.num_nodes(), 4, value_rng);
  Var out = ctx.TransformMiddle(tape, tape.Constant(pre_val),
                                tape.Constant(conv_val));
  // Every output row equals either the pre row or the conv row; a sizeable
  // fraction of each must be present at rho = 0.5.
  int from_pre = 0, from_conv = 0;
  for (int r = 0; r < graph_.num_nodes(); ++r) {
    float diff_pre = 0.0f, diff_conv = 0.0f;
    for (int c = 0; c < 4; ++c) {
      diff_pre += std::fabs(out.value()(r, c) - pre_val(r, c));
      diff_conv += std::fabs(out.value()(r, c) - conv_val(r, c));
    }
    ASSERT_TRUE(diff_pre < 1e-6f || diff_conv < 1e-6f);
    if (diff_pre < 1e-6f) ++from_pre;
    if (diff_conv < 1e-6f) ++from_conv;
  }
  EXPECT_GT(from_pre, graph_.num_nodes() / 5);
  EXPECT_GT(from_conv, graph_.num_nodes() / 5);
}

TEST_F(StrategiesTest, SkipNodeIsIdentityAtEvalTime) {
  StrategyContext ctx(graph_, StrategyConfig::SkipNodeU(0.9f),
                      /*training=*/false, rng_);
  Tape tape;
  Rng value_rng(3);
  Matrix conv_val = Matrix::Random(graph_.num_nodes(), 4, value_rng);
  Var out = ctx.TransformMiddle(
      tape, tape.Constant(Matrix(graph_.num_nodes(), 4)),
      tape.Constant(conv_val));
  EXPECT_LT(MaxAbsDiff(out.value(), conv_val), 1e-7f);
}

TEST_F(StrategiesTest, SkipConnectionAddsInput) {
  StrategyContext ctx(graph_, StrategyConfig::SkipConnection(),
                      /*training=*/true, rng_);
  Tape tape;
  Rng value_rng(4);
  Matrix pre_val = Matrix::Random(graph_.num_nodes(), 4, value_rng);
  Matrix conv_val = Matrix::Random(graph_.num_nodes(), 4, value_rng);
  Var out = ctx.TransformMiddle(tape, tape.Constant(pre_val),
                                tape.Constant(conv_val));
  EXPECT_LT(MaxAbsDiff(out.value(), Add(pre_val, conv_val)), 1e-6f);
}

TEST_F(StrategiesTest, PairNormProducesEqualRowNorms) {
  StrategyContext ctx(graph_, StrategyConfig::PairNorm(2.0f),
                      /*training=*/true, rng_);
  Tape tape;
  Rng value_rng(5);
  Matrix conv_val = Matrix::Random(graph_.num_nodes(), 6, value_rng);
  Var out = ctx.TransformMiddle(
      tape, tape.Constant(Matrix(graph_.num_nodes(), 6)),
      tape.Constant(conv_val));
  Matrix norms = RowNorms(out.value());
  for (int r = 0; r < norms.rows(); ++r) {
    EXPECT_NEAR(norms.at(r, 0), 2.0f, 1e-3f);
  }
  // Column means ~ 0 after centering (scaled rows keep mean close to 0).
  Matrix means = ColumnMeans(out.value());
  EXPECT_LT(means.AbsMax(), 0.5f);
}

TEST_F(StrategiesTest, PairNormAppliesAtBoundariesToo) {
  StrategyContext ctx(graph_, StrategyConfig::PairNorm(1.0f),
                      /*training=*/true, rng_);
  Tape tape;
  Rng value_rng(6);
  Matrix conv_val = Matrix::Random(graph_.num_nodes(), 3, value_rng);
  Var out = ctx.TransformBoundary(tape, tape.Constant(conv_val));
  EXPECT_GT(MaxAbsDiff(out.value(), conv_val), 1e-4f);
  // Whereas other strategies are boundary no-ops.
  StrategyContext none(graph_, StrategyConfig::SkipNodeU(0.5f),
                       /*training=*/true, rng_);
  Var unchanged = none.TransformBoundary(tape, tape.Constant(conv_val));
  EXPECT_LT(MaxAbsDiff(unchanged.value(), conv_val), 1e-7f);
}

TEST_F(StrategiesTest, DropEdgeSamplesOncePerContext) {
  StrategyContext ctx(graph_, StrategyConfig::DropEdge(0.5f),
                      /*training=*/true, rng_);
  const auto a0 = ctx.LayerAdjacency(0);
  const auto a1 = ctx.LayerAdjacency(1);
  EXPECT_EQ(a0.get(), a1.get());
  EXPECT_NE(a0.get(), graph_.normalized_adjacency().get());
  EXPECT_LT(a0->nnz(), graph_.normalized_adjacency()->nnz());
  // A fresh context samples a different topology.
  StrategyContext ctx2(graph_, StrategyConfig::DropEdge(0.5f),
                       /*training=*/true, rng_);
  EXPECT_NE(ctx2.LayerAdjacency(0).get(), a0.get());
}

TEST_F(StrategiesTest, DropNodeResamplesPerLayer) {
  StrategyContext ctx(graph_, StrategyConfig::DropNode(0.5f),
                      /*training=*/true, rng_);
  const auto a0 = ctx.LayerAdjacency(0);
  const auto a1 = ctx.LayerAdjacency(1);
  EXPECT_NE(a0.get(), a1.get());
  EXPECT_GT(MaxAbsDiff(a0->ToDense(), a1->ToDense()), 1e-6f);
}

TEST_F(StrategiesTest, TopologyStrategiesRevertAtEval) {
  for (const StrategyConfig& config :
       {StrategyConfig::DropEdge(0.5f), StrategyConfig::DropNode(0.5f)}) {
    StrategyContext ctx(graph_, config, /*training=*/false, rng_);
    EXPECT_EQ(ctx.LayerAdjacency(0).get(),
              graph_.normalized_adjacency().get());
  }
}

}  // namespace
}  // namespace skipnode
