// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tests for the Dirichlet-energy smoothness functional.

#include <cmath>

#include <gtest/gtest.h>

#include "core/oversmoothing.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

Graph MakeErGraph(int n, double p, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges = ErdosRenyi(n, p, rng);
  Matrix features = Matrix::RandomNormal(n, 6, rng);
  return Graph("er", n, std::move(edges), std::move(features), {}, 0);
}

TEST(DirichletEnergyTest, ZeroForDegreeScaledConstantSignal) {
  // x_i = c * sqrt(1 + d_i) is exactly the eigenvalue-1 direction, whose
  // normalised differences vanish edge by edge.
  Graph graph = MakeErGraph(40, 0.2, 1);
  Matrix x(40, 3);
  for (int i = 0; i < 40; ++i) {
    const float v = std::sqrt(1.0f + graph.degrees()[i]);
    for (int c = 0; c < 3; ++c) x.at(i, c) = v * (c + 1);
  }
  EXPECT_NEAR(DirichletEnergy(graph, x), 0.0f, 1e-4f);
}

TEST(DirichletEnergyTest, PositiveForRandomSignal) {
  Graph graph = MakeErGraph(40, 0.2, 2);
  EXPECT_GT(DirichletEnergy(graph, graph.features()), 0.1f);
}

TEST(DirichletEnergyTest, ZeroOnEdgelessGraph) {
  Rng rng(3);
  Graph graph("empty", 10, {}, Matrix::RandomNormal(10, 4, rng), {}, 0);
  EXPECT_EQ(DirichletEnergy(graph, graph.features()), 0.0f);
}

TEST(DirichletEnergyTest, QuadraticInScale) {
  Graph graph = MakeErGraph(30, 0.3, 4);
  const float base = DirichletEnergy(graph, graph.features());
  const float scaled =
      DirichletEnergy(graph, Scale(graph.features(), 3.0f));
  EXPECT_NEAR(scaled, 9.0f * base, 0.05f * 9.0f * base);
}

TEST(DirichletEnergyTest, DecaysUnderPropagation) {
  // Propagation by A_hat smooths the signal, so the energy must shrink —
  // the phenomenon SkipNode's skipping resists.
  Graph graph = MakeErGraph(60, 0.15, 5);
  Matrix x = graph.features();
  float prev = DirichletEnergy(graph, x);
  const auto a_hat = graph.normalized_adjacency();
  for (int step = 0; step < 8; ++step) {
    x = a_hat->Multiply(x);
    const float cur = DirichletEnergy(graph, x);
    EXPECT_LT(cur, prev * 1.0001f);
    prev = cur;
  }
  EXPECT_LT(prev, 0.2f * DirichletEnergy(graph, graph.features()));
}

}  // namespace
}  // namespace skipnode
