// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Executable versions of the paper's theory: the d_M contraction (Eq. 3),
// Theorem 1 (over-smoothing-induced gradient vanishing), Theorem 2 (higher
// upper bound in expectation) and Theorem 3 (longer distance from M).

#include "core/oversmoothing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/tape.h"
#include "core/skipnode.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

Graph MakeErGraph(int n, double p, uint64_t seed, int feature_dim = 8) {
  Rng rng(seed);
  EdgeList edges = ErdosRenyi(n, p, rng);
  Matrix features = Matrix::RandomNormal(n, feature_dim, rng);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i % 2;
  return Graph("er", n, std::move(edges), std::move(features),
               std::move(labels), 2);
}

TEST(MadTest, IdenticalRowsGiveZero) {
  Graph graph = MakeErGraph(30, 0.2, 1);
  Matrix x(30, 4);
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 4; ++j) x.at(i, j) = static_cast<float>(j + 1);
  }
  EXPECT_NEAR(MeanAverageDistance(graph, x), 0.0f, 1e-5f);
}

TEST(MadTest, RandomRowsGivePositiveDistance) {
  Graph graph = MakeErGraph(30, 0.2, 2);
  EXPECT_GT(MeanAverageDistance(graph, graph.features()), 0.3f);
}

TEST(MadTest, RepeatedPropagationDrivesMadTowardZero) {
  Graph graph = MakeErGraph(60, 0.15, 3);
  const auto a_hat = graph.normalized_adjacency();
  Matrix x = graph.features();
  const float initial = MeanAverageDistance(graph, x);
  for (int i = 0; i < 40; ++i) x = a_hat->Multiply(x);
  const float smoothed = MeanAverageDistance(graph, x);
  EXPECT_LT(smoothed, 0.1f * initial);
}

TEST(SubspaceAnalyzerTest, DistanceContractsUnderPropagation) {
  Graph graph = MakeErGraph(50, 0.12, 4);
  SubspaceAnalyzer analyzer(graph);
  const float lambda = analyzer.Lambda();
  ASSERT_GT(lambda, 0.0f);
  ASSERT_LT(lambda, 1.0f);

  Matrix x = graph.features();
  const auto a_hat = graph.normalized_adjacency();
  float prev = analyzer.DistanceToM(x);
  for (int l = 0; l < 10; ++l) {
    x = a_hat->Multiply(x);
    const float cur = analyzer.DistanceToM(x);
    EXPECT_LE(cur, lambda * prev * 1.02f + 1e-5f);
    prev = cur;
  }
}

TEST(SubspaceAnalyzerTest, ExponentialConvergenceOverDepth) {
  // d_M(A_hat^L X) <= lambda^L d_M(X): after many layers almost nothing of
  // the informative component survives — the curse the paper attacks.
  Graph graph = MakeErGraph(50, 0.3, 5);
  SubspaceAnalyzer analyzer(graph);
  Matrix x = graph.features();
  const float d0 = analyzer.DistanceToM(x);
  const auto a_hat = graph.normalized_adjacency();
  for (int l = 0; l < 30; ++l) x = a_hat->Multiply(x);
  EXPECT_LT(analyzer.DistanceToM(x), 0.05f * d0);
}

TEST(TheoremCoefficientsTest, ClosedForms) {
  EXPECT_NEAR(Theorem2Coefficient(0.2f, 0.99f, 0.5f),
              0.2f * 0.99f + 0.5f * (1.0f - 0.2f * 0.99f), 1e-6f);
  EXPECT_NEAR(Theorem3Coefficient(0.2f, 0.99f, 0.5f),
              0.5f * (1.0f / (0.2f * 0.99f) + 1.0f) - 1.0f, 1e-6f);
  // Theorem 2: coefficient exceeds s*lambda whenever s*lambda < 1.
  EXPECT_GT(Theorem2Coefficient(0.3f, 0.9f, 0.4f), 0.3f * 0.9f);
  // Remark 2's Cora-style example: s*lambda ~ 0.199, rho > 0.34 suffices for
  // Theorem 3's "farther away" regime.
  EXPECT_GT(Theorem3Coefficient(0.2f, 0.996f, 0.35f), 1.0f);
  EXPECT_LT(Theorem3Coefficient(0.2f, 0.996f, 0.30f), 1.0f);
}

// Empirical Theorem 2/3: with X1 = ReLU(A_hat X W) and the *analytic*
// expectation E[X2] = (1-rho) X1 + rho X, the bounds must hold.
class SkipNodeTheoremTest : public ::testing::TestWithParam<float> {};

TEST_P(SkipNodeTheoremTest, ExpectationBoundsHold) {
  const float rho = GetParam();
  Graph graph = MakeErGraph(80, 0.3, 6, /*feature_dim=*/8);
  SubspaceAnalyzer analyzer(graph);
  const float lambda = analyzer.Lambda();

  Rng rng(7);
  const float s = 0.3f;
  Matrix w = Matrix::RandomNormal(8, 8, rng);
  SetMaxSingularValue(w, s);

  // Non-negative input (the paper's setting: X is a post-ReLU output).
  Matrix x = Matrix::Random(80, 8, rng, 0.0f, 1.0f);
  Matrix x1 = Relu(MatMul(graph.normalized_adjacency()->ToDense(),
                          MatMul(x, w)));
  Matrix expected_x2 = Add(Scale(x1, 1.0f - rho), Scale(x, rho));

  const float d_x = analyzer.DistanceToM(x);
  const float d_x1 = analyzer.DistanceToM(x1);
  const float d_ex2 = analyzer.DistanceToM(expected_x2);

  // Theorem 1 of Oono & Suzuki (the paper's Eq. 3 step).
  EXPECT_LE(d_x1, s * lambda * d_x * 1.02f + 1e-4f);
  // Theorem 2: upper bound with the improved coefficient.
  EXPECT_LE(d_ex2, Theorem2Coefficient(s, lambda, rho) * d_x * 1.02f + 1e-4f);
  // Theorem 3: lower bound when the coefficient is positive.
  const float t3 = Theorem3Coefficient(s, lambda, rho);
  if (t3 > 0.0f) {
    EXPECT_GE(d_ex2, t3 * d_x1 * 0.98f - 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, SkipNodeTheoremTest,
                         ::testing::Values(0.1f, 0.3f, 0.5f, 0.7f, 0.9f));

TEST(SkipNodeTheoremTest, MonteCarloMatchesAnalyticExpectation) {
  // E over the sampled mask of X2 = (I-P) X1 + P X equals
  // (1-rho) X1 + rho X.
  const int n = 40, d = 4;
  Rng rng(8);
  Matrix x = Matrix::Random(n, d, rng, 0.0f, 1.0f);
  Matrix x1 = Matrix::Random(n, d, rng, 0.0f, 1.0f);
  const float rho = 0.4f;

  Matrix mean(n, d);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto mask = SampleSkipMaskUniform(n, rho, rng);
    for (int r = 0; r < n; ++r) {
      const Matrix& src = mask[r] ? x : x1;
      for (int c = 0; c < d; ++c) mean.at(r, c) += src(r, c);
    }
  }
  for (int64_t i = 0; i < mean.size(); ++i) {
    mean.data()[i] /= static_cast<float>(trials);
  }
  Matrix analytic = Add(Scale(x1, 1.0f - rho), Scale(x, rho));
  EXPECT_LT(MaxAbsDiff(mean, analytic), 0.03f);
}

TEST(Theorem1Test, BalancedClassesZeroLogitsGiveZeroSignedGradientSum) {
  // When the model output collapses to 0 (the over-smoothing fixed point)
  // and training classes are balanced, the summed output-layer gradient
  // vanishes even though training has barely begun.
  const int num_classes = 4;
  const int per_class = 8;
  const int n = num_classes * per_class;
  std::vector<int> labels(n);
  std::vector<int> train(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = i % num_classes;
    train[i] = i;
  }
  Tape tape;
  Parameter logits("z", Matrix(n, num_classes));  // Collapsed output: all 0.
  Var loss = tape.SoftmaxCrossEntropy(tape.Leaf(logits), labels, train);
  logits.ZeroGrad();
  tape.Backward(loss);

  double signed_sum = 0.0;
  double abs_sum = 0.0;
  for (int64_t i = 0; i < logits.grad.size(); ++i) {
    signed_sum += logits.grad.data()[i];
    abs_sum += std::fabs(logits.grad.data()[i]);
  }
  EXPECT_NEAR(signed_sum, 0.0, 1e-5);
  // Per-entry gradients are non-zero; it is the *sum* that cancels.
  EXPECT_GT(abs_sum, 0.01);
}

TEST(Theorem1Test, ImbalancedClassesDoNotCancel) {
  const int num_classes = 4;
  std::vector<int> labels = {0, 0, 0, 0, 0, 0, 1, 2};
  std::vector<int> train = {0, 1, 2, 3, 4, 5, 6, 7};
  Tape tape;
  Parameter logits("z", Matrix(8, num_classes));
  Var loss = tape.SoftmaxCrossEntropy(tape.Leaf(logits), labels, train);
  logits.ZeroGrad();
  tape.Backward(loss);
  // The signed sum still cancels per node (softmax rows sum to 1), but the
  // per-class column sums do not — check column 0.
  double column0 = 0.0;
  for (int r = 0; r < 8; ++r) column0 += logits.grad.at(r, 0);
  EXPECT_GT(std::fabs(column0), 0.01);
}

}  // namespace
}  // namespace skipnode
